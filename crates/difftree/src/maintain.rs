//! Incremental maintenance of the initial difftree under log appends and retractions.
//!
//! The paper's interactive loop is a user streaming queries while the interface
//! re-synthesizes under a latency budget. Deriving the session's difftree from the full
//! log on every change costs O(log); [`MaintainedTree`] instead maintains the exact tree
//! [`initial_difftree`](crate::builder::initial_difftree) would build — bit-identical at
//! every step — by grafting or removing a single leaf under the root `ANY`, in the spirit
//! of FO+MOD query maintenance under updates (Berkholz et al.): cost proportional to the
//! *change*, not the *log*.
//!
//! Three invariants hold after every edit:
//!
//! 1. **Tree identity** — `self.tree()` is bit-identical (same fingerprints, same
//!    canonical form) to `initial_difftree(&healthy_queries(self.entries()))`. Everything
//!    off the edited spine is `Arc`-shared with the previous tree, so fingerprint-keyed
//!    caches ([`ActionIndex`](crate::index::ActionIndex) binding summaries, expressibility
//!    memos, eval plans) keep their entries for the untouched subtrees.
//! 2. **Assignment identity** — [`MaintainedTree::assignments`] equals
//!    [`express_entries`](crate::derive::express_entries) over the maintained tree: the
//!    per-entry expressibility memo is updated in O(change) rather than re-matched. (For
//!    duplicated queries the matcher picks the *first* alternative that expresses the
//!    query; the maintained occurrence index reproduces that tie-break exactly.)
//! 3. **Quarantine transparency** — `Opaque` slots from a
//!    [`TriagedLog`](../../mctsui_core/struct.TriagedLog.html) occupy log positions but
//!    never touch the tree; retracting one is a pure bookkeeping edit.

use rustc_hash::FxHashMap;

use mctsui_sql::Ast;

use crate::derive::{ChoiceAssignment, LogEntry};
use crate::node::{DiffNode, DiffTree};

/// Per-healthy-entry maintenance state: where the entry's leaf sits under the root `ANY`
/// and the (concrete) assignment that expresses the entry against its own leaf.
#[derive(Clone, Debug)]
struct EntrySlot {
    /// This entry's own alternative index under the root `ANY` (its healthy position).
    pick: usize,
    /// Structural fingerprint of the entry's leaf, used to locate duplicate alternatives.
    leaf_fingerprint: u64,
    /// Assignment expressing the query against its own leaf — fully concrete because
    /// `from_ast` leaves contain no choice nodes.
    inner: ChoiceAssignment,
}

/// A session log plus the incrementally maintained initial difftree over its healthy
/// queries.
///
/// Appending a parsed query grafts one new leaf under the root `ANY` (promoting the root
/// through the 0 → 1 → many shapes exactly as
/// [`initial_difftree`](crate::builder::initial_difftree) does); retracting removes one
/// leaf and re-demotes the root. Both edits clone only the root spine — all sibling
/// subtrees stay `Arc`-shared with the previous tree — and patch the per-entry
/// expressibility memo in place instead of re-matching the whole log.
#[derive(Clone, Debug)]
pub struct MaintainedTree {
    /// The full log in arrival order, quarantined slots included.
    entries: Vec<LogEntry>,
    /// Maintenance state per entry (`None` for quarantined slots).
    slots: Vec<Option<EntrySlot>>,
    /// The maintained tree; bit-identical to `initial_difftree` of the healthy queries.
    tree: DiffTree,
    /// Leaf fingerprint → sorted healthy positions carrying that exact leaf. The head of
    /// each list is the alternative the matcher would pick for any duplicate of that
    /// query (the matcher scans alternatives in order and takes the first hit).
    occurrences: FxHashMap<u64, Vec<usize>>,
    /// Number of healthy (non-quarantined) entries.
    healthy_len: usize,
}

impl MaintainedTree {
    /// An empty log: the maintained tree is the empty alternative, exactly like
    /// `initial_difftree(&[])`.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            slots: Vec::new(),
            tree: DiffTree::new(DiffNode::empty()),
            occurrences: FxHashMap::default(),
            healthy_len: 0,
        }
    }
}

impl Default for MaintainedTree {
    fn default() -> Self {
        Self::new()
    }
}

impl MaintainedTree {
    /// Build a maintained tree by appending every entry in order.
    pub fn from_entries(entries: Vec<LogEntry>) -> Self {
        let mut maintained = Self::new();
        for entry in entries {
            maintained.append_entry(entry);
        }
        maintained
    }

    /// Append a parsed query to the log, grafting its leaf into the tree in O(change).
    pub fn append_query(&mut self, ast: Ast) {
        self.append_entry(LogEntry::Parsed(ast));
    }

    /// Append a log entry; quarantined slots occupy a position but leave the tree alone.
    pub fn append_entry(&mut self, entry: LogEntry) {
        let Some(ast) = entry.ast().cloned() else {
            self.entries.push(entry);
            self.slots.push(None);
            return;
        };
        let leaf = DiffNode::from_ast(&ast);
        let fingerprint = leaf.fingerprint();
        let inner = ChoiceAssignment::concrete(&leaf);
        let pick = self.healthy_len;
        // Graft the leaf, promoting the root through the same shapes `initial_difftree`
        // uses: empty alt -> plain leaf -> ANY of leaves. Existing alternatives are
        // Arc-cloned, never rebuilt, so their fingerprints (and every fingerprint-keyed
        // cache entry) survive the edit.
        let root = match self.healthy_len {
            0 => leaf,
            1 => DiffNode::any(vec![self.tree.root().clone(), leaf]),
            _ => {
                let mut children = self.tree.root().children().to_vec();
                children.push(leaf);
                DiffNode::any(children)
            }
        };
        self.tree = DiffTree::new(root);
        self.occurrences.entry(fingerprint).or_default().push(pick);
        self.entries.push(entry);
        self.slots.push(Some(EntrySlot {
            pick,
            leaf_fingerprint: fingerprint,
            inner,
        }));
        self.healthy_len += 1;
    }

    /// Retract the entry at `index` (a position in the full log, quarantined slots
    /// included), un-grafting its leaf from the tree in O(change).
    ///
    /// Returns the removed entry, or an error if `index` is out of bounds.
    pub fn retract_query(&mut self, index: usize) -> Result<LogEntry, String> {
        if index >= self.entries.len() {
            return Err(format!(
                "retract index {index} out of bounds for log of length {}",
                self.entries.len()
            ));
        }
        let entry = self.entries.remove(index);
        let slot = self.slots.remove(index);
        let Some(slot) = slot else {
            // Quarantined slot: the tree never contained it.
            return Ok(entry);
        };
        let pick = slot.pick;
        // Drop the retracted position from the occurrence index and shift the positions
        // above it down by one (their alternatives slide left under the root ANY).
        self.occurrences.retain(|_, picks| {
            picks.retain(|&p| p != pick);
            for p in picks.iter_mut() {
                if *p > pick {
                    *p -= 1;
                }
            }
            !picks.is_empty()
        });
        for slot in self.slots.iter_mut().flatten() {
            if slot.pick > pick {
                slot.pick -= 1;
            }
        }
        // Un-graft the leaf, demoting the root through the same shapes in reverse:
        // ANY of leaves -> plain leaf -> empty alt. Surviving alternatives are
        // Arc-cloned from the old tree.
        let root = match self.healthy_len {
            0 => unreachable!("healthy slot existed, so healthy_len >= 1"),
            1 => DiffNode::empty(),
            2 => self.tree.root().children()[1 - pick].clone(),
            _ => {
                let mut children = self.tree.root().children().to_vec();
                children.remove(pick);
                DiffNode::any(children)
            }
        };
        self.tree = DiffTree::new(root);
        self.healthy_len -= 1;
        Ok(entry)
    }

    /// The maintained tree — bit-identical to
    /// [`initial_difftree`](crate::builder::initial_difftree) over the healthy queries.
    pub fn tree(&self) -> &DiffTree {
        &self.tree
    }

    /// The full log in arrival order, quarantined slots included.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of entries in the log, quarantined slots included.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the log holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of healthy (non-quarantined) entries — the alternatives under the root.
    pub fn healthy_len(&self) -> usize {
        self.healthy_len
    }

    /// Number of quarantined (`Opaque`) slots in the log.
    pub fn quarantined_len(&self) -> usize {
        self.entries.len() - self.healthy_len
    }

    /// The healthy query ASTs in log order (what the maintained tree is built over).
    pub fn healthy(&self) -> Vec<Ast> {
        self.entries
            .iter()
            .filter_map(|entry| entry.ast().cloned())
            .collect()
    }

    /// The incrementally maintained expressibility memo: per entry, the assignment over
    /// the maintained tree that expresses it (`None` for quarantined slots). Equal to
    /// [`express_entries`](crate::derive::express_entries)`(self.tree().root(),
    /// self.entries())` — but produced from O(change)-maintained state instead of a full
    /// re-match of the log.
    pub fn assignments(&self) -> Vec<Option<ChoiceAssignment>> {
        self.slots
            .iter()
            .map(|slot| {
                let slot = slot.as_ref()?;
                if self.healthy_len == 1 {
                    // No root ANY: the tree is the single leaf itself.
                    return Some(slot.inner.clone());
                }
                // The matcher scans alternatives left to right and returns the first
                // one that expresses the query; for duplicated queries that is the
                // earliest alternative carrying the same leaf.
                let pick = self.occurrences[&slot.leaf_fingerprint][0];
                Some(ChoiceAssignment::Any {
                    pick,
                    inner: Box::new(slot.inner.clone()),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::initial_difftree;
    use crate::derive::{express_entries, healthy_queries};
    use crate::node::DiffKind;
    use mctsui_sql::parse_query;

    fn q(sql: &str) -> Ast {
        parse_query(sql).unwrap()
    }

    fn opaque(source: &str) -> LogEntry {
        LogEntry::Opaque {
            source: source.to_string(),
            errors: Vec::new(),
        }
    }

    /// The full equivalence contract: tree bit-identity against a from-scratch
    /// `initial_difftree`, and assignment identity against a full `express_entries`.
    fn assert_equivalent(maintained: &MaintainedTree) {
        let healthy = healthy_queries(maintained.entries());
        let reference = initial_difftree(&healthy);
        assert_eq!(
            maintained.tree().fingerprint(),
            reference.fingerprint(),
            "maintained tree diverged from initial_difftree"
        );
        assert_eq!(
            maintained.tree().root().canonical(),
            reference.root().canonical(),
            "maintained tree canonical form diverged"
        );
        assert_eq!(
            maintained.assignments(),
            express_entries(maintained.tree().root(), maintained.entries()),
            "maintained assignments diverged from express_entries"
        );
        assert_eq!(maintained.healthy_len(), healthy.len());
    }

    #[test]
    fn append_walks_the_initial_difftree_shapes() {
        let mut maintained = MaintainedTree::new();
        assert!(maintained.tree().root().is_empty_alt());
        assert_equivalent(&maintained);

        maintained.append_query(q("select x from t"));
        assert_eq!(maintained.tree().root().kind(), DiffKind::All);
        assert_equivalent(&maintained);

        maintained.append_query(q("select y from t"));
        assert_eq!(maintained.tree().root().kind(), DiffKind::Any);
        assert_equivalent(&maintained);

        maintained.append_query(q("select x from t where a = 1"));
        assert_eq!(maintained.tree().root().children().len(), 3);
        assert_equivalent(&maintained);
    }

    #[test]
    fn retract_walks_the_shapes_in_reverse() {
        let mut maintained = MaintainedTree::from_entries(vec![
            LogEntry::Parsed(q("select x from t")),
            LogEntry::Parsed(q("select y from t")),
            LogEntry::Parsed(q("select z from t")),
        ]);
        assert_equivalent(&maintained);

        let removed = maintained.retract_query(1).unwrap();
        assert_eq!(removed.ast().unwrap(), &q("select y from t"));
        assert_eq!(maintained.tree().root().children().len(), 2);
        assert_equivalent(&maintained);

        maintained.retract_query(0).unwrap();
        assert_eq!(maintained.tree().root().kind(), DiffKind::All);
        assert_equivalent(&maintained);

        maintained.retract_query(0).unwrap();
        assert!(maintained.tree().root().is_empty_alt());
        assert_equivalent(&maintained);
    }

    #[test]
    fn retract_out_of_bounds_is_an_error() {
        let mut maintained = MaintainedTree::new();
        assert!(maintained.retract_query(0).is_err());
        maintained.append_query(q("select x from t"));
        assert!(maintained.retract_query(1).is_err());
        assert!(maintained.retract_query(0).is_ok());
    }

    #[test]
    fn opaque_slots_never_touch_the_tree() {
        let mut maintained = MaintainedTree::new();
        maintained.append_entry(opaque("SELEC x FRM t"));
        assert!(maintained.tree().root().is_empty_alt());
        assert_equivalent(&maintained);

        maintained.append_query(q("select x from t"));
        let fingerprint_before = maintained.tree().fingerprint();
        maintained.append_entry(opaque("WITH ("));
        assert_eq!(maintained.tree().fingerprint(), fingerprint_before);
        assert_eq!(maintained.len(), 3);
        assert_eq!(maintained.quarantined_len(), 2);
        assert_equivalent(&maintained);

        // Retracting an opaque slot is pure bookkeeping.
        maintained.retract_query(0).unwrap();
        assert_eq!(maintained.tree().fingerprint(), fingerprint_before);
        assert_equivalent(&maintained);
    }

    #[test]
    fn append_shares_every_existing_alternative() {
        let mut maintained = MaintainedTree::from_entries(vec![
            LogEntry::Parsed(q("select x from t")),
            LogEntry::Parsed(q("select y from t")),
        ]);
        let before: Vec<DiffNode> = maintained.tree().root().children().to_vec();
        maintained.append_query(q("select z from t"));
        let after = maintained.tree().root().children();
        assert_eq!(after.len(), 3);
        // Off-spine sharing: the pre-existing alternatives are the same Arc allocations,
        // so every fingerprint-keyed cache entry for them survives the edit.
        for (old, new) in before.iter().zip(after.iter()) {
            assert!(DiffNode::ptr_eq(old, new));
        }
    }

    #[test]
    fn retract_shares_every_surviving_alternative() {
        let mut maintained = MaintainedTree::from_entries(vec![
            LogEntry::Parsed(q("select x from t")),
            LogEntry::Parsed(q("select y from t")),
            LogEntry::Parsed(q("select z from t")),
        ]);
        let before: Vec<DiffNode> = maintained.tree().root().children().to_vec();
        maintained.retract_query(1).unwrap();
        let after = maintained.tree().root().children();
        assert!(DiffNode::ptr_eq(&before[0], &after[0]));
        assert!(DiffNode::ptr_eq(&before[2], &after[1]));

        // Down to one alternative the surviving leaf *becomes* the root, still shared.
        maintained.retract_query(0).unwrap();
        assert!(DiffNode::ptr_eq(&before[2], maintained.tree().root()));
    }

    #[test]
    fn duplicate_queries_reproduce_the_matchers_first_pick() {
        let mut maintained = MaintainedTree::from_entries(vec![
            LogEntry::Parsed(q("select x from t")),
            LogEntry::Parsed(q("select y from t")),
            LogEntry::Parsed(q("select x from t")),
        ]);
        assert_equivalent(&maintained);
        // Both duplicates express through alternative 0 (first match wins).
        let assignments = maintained.assignments();
        let pick_of = |a: &Option<ChoiceAssignment>| match a {
            Some(ChoiceAssignment::Any { pick, .. }) => *pick,
            other => panic!("expected Any assignment, got {other:?}"),
        };
        assert_eq!(pick_of(&assignments[0]), 0);
        assert_eq!(pick_of(&assignments[2]), 0);

        // Retracting the first occurrence re-points the survivor at its own leaf.
        maintained.retract_query(0).unwrap();
        assert_equivalent(&maintained);
        let assignments = maintained.assignments();
        assert_eq!(pick_of(&assignments[1]), 1);
    }

    #[test]
    fn random_interleavings_stay_equivalent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let pool = [
            "select x from t",
            "select y from t",
            "select x from t where a = 1",
            "select sum(v) from t group by k",
            "select x from t",
        ];
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut maintained = MaintainedTree::new();
            for step in 0..24 {
                if !maintained.is_empty() && rng.gen_range(0..3) == 0 {
                    let index = rng.gen_range(0..maintained.len());
                    maintained.retract_query(index).unwrap();
                } else if rng.gen_range(0..4) == 0 {
                    maintained.append_entry(opaque("SELEC broken"));
                } else {
                    let sql = pool[rng.gen_range(0..pool.len())];
                    maintained.append_query(q(sql));
                }
                assert_equivalent(&maintained);
                let _ = step;
            }
        }
    }
}
