//! The difftree node structure.
//!
//! A [`DiffNode`] either *is* an AST node (`All`, carrying a [`Label`]) or is a structural
//! choice combinator (`Any`, `Opt`, `Multi`). The special label `Empty` marks the empty
//! alternative of an `Any` (used to express the absence of an optional clause — e.g. q3 in
//! the paper's Figure 1 has no `WHERE` clause).

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use mctsui_sql::{Ast, Literal, NodeKind};

/// The four node kinds of a difftree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiffKind {
    /// An AST node; all children are derived in order.
    All,
    /// Exactly one child is chosen.
    Any,
    /// The single child is either derived or omitted.
    Opt,
    /// The single child is derived zero or more times.
    Multi,
}

impl DiffKind {
    /// True for the choice kinds (`Any`, `Opt`, `Multi`).
    pub fn is_choice(&self) -> bool {
        !matches!(self, DiffKind::All)
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DiffKind::All => "ALL",
            DiffKind::Any => "ANY",
            DiffKind::Opt => "OPT",
            DiffKind::Multi => "MULTI",
        }
    }
}

impl fmt::Display for DiffKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The AST label carried by an `All` node: the node kind plus its literal value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label {
    /// The grammar-rule kind of the corresponding AST node.
    pub kind: NodeKind,
    /// The literal value of the corresponding AST node, if any.
    pub value: Option<Literal>,
}

impl Label {
    /// Build a label.
    pub fn new(kind: NodeKind, value: Option<Literal>) -> Self {
        Self { kind, value }
    }

    /// The label of the empty alternative.
    pub fn empty() -> Self {
        Self { kind: NodeKind::Empty, value: None }
    }

    /// True if this is the empty-alternative label.
    pub fn is_empty(&self) -> bool {
        self.kind == NodeKind::Empty
    }

    /// Extract the label of an AST node.
    pub fn of_ast(ast: &Ast) -> Self {
        Self { kind: ast.kind(), value: ast.value().cloned() }
    }

    /// Short human-readable rendering, e.g. `ColExpr:sales` or `Select`.
    pub fn render(&self) -> String {
        match &self.value {
            Some(v) => format!("{}:{}", self.kind.name(), v.render()),
            None => self.kind.name().to_string(),
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A path from the root of a difftree to a node (sequence of child indices).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DiffPath(pub Vec<usize>);

impl DiffPath {
    /// The root path.
    pub fn root() -> Self {
        DiffPath(Vec::new())
    }

    /// Extend by one child index.
    pub fn child(&self, idx: usize) -> Self {
        let mut v = self.0.clone();
        v.push(idx);
        DiffPath(v)
    }

    /// Number of steps from the root.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The parent path, or `None` at the root.
    pub fn parent(&self) -> Option<DiffPath> {
        if self.0.is_empty() {
            None
        } else {
            Some(DiffPath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// True if `self` is a prefix of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &DiffPath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for DiffPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/")?;
        for (i, idx) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{idx}")?;
        }
        Ok(())
    }
}

/// A node of a difftree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DiffNode {
    kind: DiffKind,
    label: Option<Label>,
    children: Vec<DiffNode>,
}

impl DiffNode {
    // ------------------------------------------------------------------ constructors

    /// An `All` node with the given label and children.
    pub fn all(label: Label, children: Vec<DiffNode>) -> Self {
        Self { kind: DiffKind::All, label: Some(label), children }
    }

    /// An `All` leaf.
    pub fn all_leaf(label: Label) -> Self {
        Self::all(label, Vec::new())
    }

    /// The empty alternative: an `All` leaf labelled `Empty` that derives nothing.
    pub fn empty() -> Self {
        Self::all_leaf(Label::empty())
    }

    /// An `Any` node over the given alternatives.
    pub fn any(children: Vec<DiffNode>) -> Self {
        Self { kind: DiffKind::Any, label: None, children }
    }

    /// An `Opt` node over the given child.
    pub fn opt(child: DiffNode) -> Self {
        Self { kind: DiffKind::Opt, label: None, children: vec![child] }
    }

    /// A `Multi` node over the given child.
    pub fn multi(child: DiffNode) -> Self {
        Self { kind: DiffKind::Multi, label: None, children: vec![child] }
    }

    /// Convert an AST into the all-`All` difftree that expresses exactly that query.
    pub fn from_ast(ast: &Ast) -> Self {
        if ast.is_empty_node() {
            return Self::empty();
        }
        Self::all(Label::of_ast(ast), ast.children().iter().map(Self::from_ast).collect())
    }

    // ------------------------------------------------------------------ accessors

    /// This node's kind.
    pub fn kind(&self) -> DiffKind {
        self.kind
    }

    /// This node's label (only `All` nodes carry one).
    pub fn label(&self) -> Option<&Label> {
        self.label.as_ref()
    }

    /// Children of this node.
    pub fn children(&self) -> &[DiffNode] {
        &self.children
    }

    /// Mutable access to children (used by the rule engine).
    pub fn children_mut(&mut self) -> &mut Vec<DiffNode> {
        &mut self.children
    }

    /// True if this is a choice node (`Any`, `Opt`, `Multi`).
    pub fn is_choice(&self) -> bool {
        self.kind.is_choice()
    }

    /// True if this is the empty alternative.
    pub fn is_empty_alt(&self) -> bool {
        self.kind == DiffKind::All
            && self.children.is_empty()
            && self.label.as_ref().is_some_and(Label::is_empty)
    }

    /// True if this subtree contains no choice nodes (it expresses exactly one derivation).
    pub fn is_concrete(&self) -> bool {
        !self.is_choice() && self.children.iter().all(DiffNode::is_concrete)
    }

    /// Number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(DiffNode::size).sum::<usize>()
    }

    /// Height of the subtree.
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(DiffNode::depth).max().unwrap_or(0)
    }

    /// Number of choice nodes in the subtree.
    pub fn choice_count(&self) -> usize {
        let own = usize::from(self.is_choice());
        own + self.children.iter().map(DiffNode::choice_count).sum::<usize>()
    }

    /// Structural fingerprint (equal subtrees hash equal).
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// The node at `path`, if any.
    pub fn node_at(&self, path: &DiffPath) -> Option<&DiffNode> {
        let mut cur = self;
        for &idx in &path.0 {
            cur = cur.children.get(idx)?;
        }
        Some(cur)
    }

    /// Replace the subtree at `path`, returning the new tree (`None` if the path is invalid).
    pub fn replace_at(&self, path: &DiffPath, replacement: DiffNode) -> Option<DiffNode> {
        fn rec(node: &DiffNode, steps: &[usize], replacement: &DiffNode) -> Option<DiffNode> {
            match steps.split_first() {
                None => Some(replacement.clone()),
                Some((&idx, rest)) => {
                    if idx >= node.children.len() {
                        return None;
                    }
                    let mut copy = node.clone();
                    copy.children[idx] = rec(&node.children[idx], rest, replacement)?;
                    Some(copy)
                }
            }
        }
        rec(self, &path.0, &replacement)
    }

    /// Pre-order traversal of `(path, node)` pairs.
    pub fn walk(&self) -> Vec<(DiffPath, &DiffNode)> {
        let mut out = Vec::with_capacity(self.size());
        fn rec<'a>(node: &'a DiffNode, path: DiffPath, out: &mut Vec<(DiffPath, &'a DiffNode)>) {
            out.push((path.clone(), node));
            for (i, child) in node.children.iter().enumerate() {
                rec(child, path.child(i), out);
            }
        }
        rec(self, DiffPath::root(), &mut out);
        out
    }

    /// Paths of every choice node, in pre-order.
    pub fn choice_paths(&self) -> Vec<DiffPath> {
        self.walk()
            .into_iter()
            .filter(|(_, n)| n.is_choice())
            .map(|(p, _)| p)
            .collect()
    }

    /// Convert a *concrete* subtree (no choice nodes) back into the AST sequence it derives.
    ///
    /// Returns `None` if the subtree still contains choice nodes.
    pub fn to_ast_sequence(&self) -> Option<Vec<Ast>> {
        match self.kind {
            DiffKind::All => {
                let label = self.label.as_ref()?;
                if label.is_empty() {
                    return Some(Vec::new());
                }
                let mut children = Vec::new();
                for c in &self.children {
                    children.extend(c.to_ast_sequence()?);
                }
                let ast = match &label.value {
                    Some(v) => Ast::with_value(label.kind, v.clone(), children),
                    None => Ast::new(label.kind, children),
                };
                Some(vec![ast])
            }
            _ => None,
        }
    }

    /// Canonicalise the subtree: deduplicate and sort the alternatives of every `Any` node by
    /// fingerprint. Used to compare search states structurally.
    pub fn canonical(&self) -> DiffNode {
        let mut children: Vec<DiffNode> = self.children.iter().map(DiffNode::canonical).collect();
        if self.kind == DiffKind::Any {
            children.sort_by_key(DiffNode::fingerprint);
            children.dedup();
        }
        DiffNode { kind: self.kind, label: self.label.clone(), children }
    }

    /// A compact one-line rendering, e.g. `ANY[(ALL Select ...)(ALL Select ...)]`.
    pub fn sexpr(&self) -> String {
        let mut s = String::new();
        self.write_sexpr(&mut s);
        s
    }

    fn write_sexpr(&self, out: &mut String) {
        out.push('(');
        out.push_str(self.kind.name());
        if let Some(l) = &self.label {
            out.push(' ');
            out.push_str(&l.render());
        }
        for c in &self.children {
            out.push(' ');
            c.write_sexpr(out);
        }
        out.push(')');
    }
}

impl fmt::Display for DiffNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sexpr())
    }
}

/// A difftree: the root [`DiffNode`] of a search state.
///
/// The wrapper exists to host tree-level operations (expressibility over a whole query log,
/// rule application bookkeeping, fingerprints) while [`DiffNode`] stays a plain recursive
/// structure.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DiffTree {
    root: DiffNode,
}

impl DiffTree {
    /// Wrap a root node.
    pub fn new(root: DiffNode) -> Self {
        Self { root }
    }

    /// The root node.
    pub fn root(&self) -> &DiffNode {
        &self.root
    }

    /// Consume the tree and return its root.
    pub fn into_root(self) -> DiffNode {
        self.root
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Number of choice nodes.
    pub fn choice_count(&self) -> usize {
        self.root.choice_count()
    }

    /// Paths of all choice nodes (pre-order).
    pub fn choice_paths(&self) -> Vec<DiffPath> {
        self.root.choice_paths()
    }

    /// The node at a path.
    pub fn node_at(&self, path: &DiffPath) -> Option<&DiffNode> {
        self.root.node_at(path)
    }

    /// Replace the subtree at `path`.
    pub fn replace_at(&self, path: &DiffPath, replacement: DiffNode) -> Option<DiffTree> {
        self.root.replace_at(path, replacement).map(DiffTree::new)
    }

    /// Structural fingerprint of the canonical form (used to deduplicate search states).
    pub fn canonical_fingerprint(&self) -> u64 {
        self.root.canonical().fingerprint()
    }

    /// Structural fingerprint of the tree as-is.
    pub fn fingerprint(&self) -> u64 {
        self.root.fingerprint()
    }
}

impl fmt::Display for DiffTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.root.sexpr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctsui_sql::parse_query;

    fn q(sql: &str) -> Ast {
        parse_query(sql).unwrap()
    }

    #[test]
    fn from_ast_is_all_only_and_round_trips() {
        let ast = q("SELECT Sales FROM sales WHERE cty = 'USA'");
        let node = DiffNode::from_ast(&ast);
        assert!(node.is_concrete());
        assert_eq!(node.size(), ast.size());
        let seq = node.to_ast_sequence().unwrap();
        assert_eq!(seq, vec![ast]);
    }

    #[test]
    fn empty_alternative_derives_nothing() {
        let empty = DiffNode::empty();
        assert!(empty.is_empty_alt());
        assert_eq!(empty.to_ast_sequence().unwrap(), Vec::<Ast>::new());
    }

    #[test]
    fn choice_nodes_are_not_concrete() {
        let ast = q("SELECT Costs FROM sales");
        let any = DiffNode::any(vec![DiffNode::from_ast(&ast), DiffNode::empty()]);
        assert!(!any.is_concrete());
        assert!(any.to_ast_sequence().is_none());
        assert_eq!(any.choice_count(), 1);
    }

    #[test]
    fn walk_and_choice_paths() {
        let a = DiffNode::from_ast(&q("SELECT x FROM t"));
        let b = DiffNode::from_ast(&q("SELECT y FROM t"));
        let root = DiffNode::any(vec![a, b]);
        let tree = DiffTree::new(root);
        assert_eq!(tree.choice_paths(), vec![DiffPath::root()]);
        assert_eq!(tree.size(), tree.root().walk().len());
    }

    #[test]
    fn replace_at_and_node_at() {
        let a = DiffNode::from_ast(&q("SELECT x FROM t"));
        let b = DiffNode::from_ast(&q("SELECT y FROM t"));
        let tree = DiffTree::new(DiffNode::any(vec![a.clone(), b]));
        let path = DiffPath(vec![1]);
        let replaced = tree.replace_at(&path, a.clone()).unwrap();
        assert_eq!(replaced.node_at(&path), Some(&a));
        assert!(tree.replace_at(&DiffPath(vec![7]), a).is_none());
    }

    #[test]
    fn canonical_sorts_and_dedupes_any_children() {
        let a = DiffNode::from_ast(&q("SELECT x FROM t"));
        let b = DiffNode::from_ast(&q("SELECT y FROM t"));
        let t1 = DiffNode::any(vec![a.clone(), b.clone(), a.clone()]);
        let t2 = DiffNode::any(vec![b, a]);
        assert_eq!(t1.canonical(), t2.canonical());
        assert_eq!(t1.canonical().children().len(), 2);
        assert_eq!(
            DiffTree::new(t1).canonical_fingerprint(),
            DiffTree::new(t2).canonical_fingerprint()
        );
    }

    #[test]
    fn sexpr_readable() {
        let node = DiffNode::opt(DiffNode::from_ast(&q("SELECT x FROM t")));
        let s = node.sexpr();
        assert!(s.starts_with("(OPT (ALL Select"));
        assert!(s.contains("ColExpr:x"));
    }

    #[test]
    fn labels_render() {
        assert_eq!(Label::empty().render(), "Empty");
        let ast = q("SELECT x FROM t");
        let l = Label::of_ast(&ast);
        assert_eq!(l.render(), "Select");
    }

    #[test]
    fn diff_path_helpers() {
        let p = DiffPath(vec![0, 2]);
        assert_eq!(p.child(1), DiffPath(vec![0, 2, 1]));
        assert_eq!(p.parent(), Some(DiffPath(vec![0])));
        assert!(DiffPath::root().is_prefix_of(&p));
        assert!(!p.is_prefix_of(&DiffPath(vec![0])));
        assert_eq!(p.to_string(), "/0/2");
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let ast = q("select top 10 objid from stars where u between 0 and 30");
        let tree = DiffTree::new(DiffNode::any(vec![DiffNode::from_ast(&ast), DiffNode::empty()]));
        let json = serde_json::to_string(&tree).unwrap();
        let back: DiffTree = serde_json::from_str(&json).unwrap();
        assert_eq!(tree, back);
    }
}
