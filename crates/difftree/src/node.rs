//! The difftree node structure — persistent, immutable, structurally shared.
//!
//! A [`DiffNode`] either *is* an AST node (`All`, carrying a [`Label`]) or is a structural
//! choice combinator (`Any`, `Opt`, `Multi`). The special label `Empty` marks the empty
//! alternative of an `Any` (used to express the absence of an optional clause — e.g. q3 in
//! the paper's Figure 1 has no `WHERE` clause).
//!
//! # Representation
//!
//! The MCTS search explores difftree states with fanout ~50 along ~100-step paths, so state
//! creation is the hot path. Nodes are therefore immutable and shared behind [`Arc`]:
//!
//! * `Clone` is a reference-count bump — cloning a whole search state is O(1);
//! * [`DiffNode::replace_at`] copies only the *spine* from the root to the edited node and
//!   shares every untouched subtree with the original tree (pointer-equal, observable via
//!   [`DiffNode::ptr_eq`]);
//! * every node caches its `size`, `depth`, `choice_count` and a structural `fingerprint`,
//!   so those queries — which the rule engine, the cost model and state deduplication issue
//!   constantly — are O(1) instead of O(subtree);
//! * labels are interned through [`mctsui_sql::intern`], making label equality a pointer
//!   comparison and label hashing a table lookup done once per distinct label.
//!
//! Equality first compares pointers, then cached fingerprints, and only walks the structure
//! on a fingerprint match (shared subtrees short-circuit), so comparing unequal trees is
//! O(1) and comparing equal trees skips every shared region.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use mctsui_sql::Ast;

pub use mctsui_sql::{Label, LabelId};

/// The four node kinds of a difftree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiffKind {
    /// An AST node; all children are derived in order.
    All,
    /// Exactly one child is chosen.
    Any,
    /// The single child is either derived or omitted.
    Opt,
    /// The single child is derived zero or more times.
    Multi,
}

impl DiffKind {
    /// True for the choice kinds (`Any`, `Opt`, `Multi`).
    pub fn is_choice(&self) -> bool {
        !matches!(self, DiffKind::All)
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DiffKind::All => "ALL",
            DiffKind::Any => "ANY",
            DiffKind::Opt => "OPT",
            DiffKind::Multi => "MULTI",
        }
    }
}

impl fmt::Display for DiffKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A path from the root of a difftree to a node (sequence of child indices).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DiffPath(pub Vec<usize>);

impl DiffPath {
    /// The root path.
    pub fn root() -> Self {
        DiffPath(Vec::new())
    }

    /// Extend by one child index.
    pub fn child(&self, idx: usize) -> Self {
        let mut v = self.0.clone();
        v.push(idx);
        DiffPath(v)
    }

    /// Number of steps from the root.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The parent path, or `None` at the root.
    pub fn parent(&self) -> Option<DiffPath> {
        if self.0.is_empty() {
            None
        } else {
            Some(DiffPath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// True if `self` is a prefix of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &DiffPath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for DiffPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/")?;
        for (i, idx) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{idx}")?;
        }
        Ok(())
    }
}

/// The immutable payload of a node, shared behind `Arc`.
#[derive(Debug)]
struct NodeInner {
    kind: DiffKind,
    label: Option<LabelId>,
    children: Vec<DiffNode>,
    /// Cached number of nodes in the subtree.
    size: usize,
    /// Cached height of the subtree.
    depth: usize,
    /// Cached number of choice nodes in the subtree.
    choice_count: usize,
    /// Cached structural fingerprint (equal subtrees have equal fingerprints).
    fingerprint: u64,
}

/// A node of a difftree: a cheap (`Arc`-backed) handle to an immutable subtree.
#[derive(Debug, Clone)]
pub struct DiffNode {
    inner: Arc<NodeInner>,
}

/// Mix one value into a running structural hash (splitmix64-style finalizer).
#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    let mut z = hash ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DiffNode {
    // ------------------------------------------------------------------ constructors

    fn make(kind: DiffKind, label: Option<LabelId>, children: Vec<DiffNode>) -> Self {
        let mut size = 1usize;
        let mut depth = 0usize;
        let mut choice_count = usize::from(kind.is_choice());
        let mut fingerprint = mix(0x5EED_F1E1_D00D_CAFE, kind as u64 + 1);
        fingerprint = mix(fingerprint, label.map_or(0, LabelId::content_hash));
        fingerprint = mix(fingerprint, children.len() as u64);
        for child in &children {
            size += child.inner.size;
            depth = depth.max(child.inner.depth);
            choice_count += child.inner.choice_count;
            fingerprint = mix(fingerprint, child.inner.fingerprint);
        }
        Self {
            inner: Arc::new(NodeInner {
                kind,
                label,
                children,
                size,
                depth: depth + 1,
                choice_count,
                fingerprint,
            }),
        }
    }

    /// An `All` node with the given label and children.
    pub fn all(label: Label, children: Vec<DiffNode>) -> Self {
        Self::all_interned(label.intern(), children)
    }

    /// An `All` node with an already interned label (the hot-path constructor used by the
    /// rule engine).
    pub fn all_interned(label: LabelId, children: Vec<DiffNode>) -> Self {
        Self::make(DiffKind::All, Some(label), children)
    }

    /// An `All` leaf.
    pub fn all_leaf(label: Label) -> Self {
        Self::all(label, Vec::new())
    }

    /// The empty alternative: an `All` leaf labelled `Empty` that derives nothing.
    pub fn empty() -> Self {
        Self::all_leaf(Label::empty())
    }

    /// An `Any` node over the given alternatives.
    pub fn any(children: Vec<DiffNode>) -> Self {
        Self::make(DiffKind::Any, None, children)
    }

    /// An `Opt` node over the given child.
    pub fn opt(child: DiffNode) -> Self {
        Self::make(DiffKind::Opt, None, vec![child])
    }

    /// A `Multi` node over the given child.
    pub fn multi(child: DiffNode) -> Self {
        Self::make(DiffKind::Multi, None, vec![child])
    }

    /// Convert an AST into the all-`All` difftree that expresses exactly that query.
    pub fn from_ast(ast: &Ast) -> Self {
        if ast.is_empty_node() {
            return Self::empty();
        }
        Self::all_interned(
            LabelId::of_ast(ast),
            ast.children().iter().map(Self::from_ast).collect(),
        )
    }

    // ------------------------------------------------------------------ accessors

    /// This node's kind.
    pub fn kind(&self) -> DiffKind {
        self.inner.kind
    }

    /// This node's label (only `All` nodes carry one).
    pub fn label(&self) -> Option<&Label> {
        self.inner.label.map(LabelId::label)
    }

    /// This node's interned label id (only `All` nodes carry one).
    pub fn label_id(&self) -> Option<LabelId> {
        self.inner.label
    }

    /// Children of this node.
    pub fn children(&self) -> &[DiffNode] {
        &self.inner.children
    }

    /// True if `a` and `b` are the *same* shared subtree (not merely structurally equal).
    ///
    /// This is the observable guarantee of structural sharing: after
    /// [`DiffNode::replace_at`], every subtree off the edited path is `ptr_eq` to its
    /// counterpart in the original tree.
    pub fn ptr_eq(a: &DiffNode, b: &DiffNode) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }

    /// True if this is a choice node (`Any`, `Opt`, `Multi`).
    pub fn is_choice(&self) -> bool {
        self.inner.kind.is_choice()
    }

    /// True if this is the empty alternative.
    pub fn is_empty_alt(&self) -> bool {
        self.inner.kind == DiffKind::All
            && self.inner.children.is_empty()
            && self.inner.label.is_some_and(LabelId::is_empty)
    }

    /// True if this subtree contains no choice nodes (it expresses exactly one derivation).
    pub fn is_concrete(&self) -> bool {
        self.inner.choice_count == 0
    }

    /// Number of nodes in the subtree. O(1): cached at construction.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Height of the subtree. O(1): cached at construction.
    pub fn depth(&self) -> usize {
        self.inner.depth
    }

    /// Number of choice nodes in the subtree. O(1): cached at construction.
    pub fn choice_count(&self) -> usize {
        self.inner.choice_count
    }

    /// Structural fingerprint (equal subtrees hash equal). O(1): cached at construction.
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint
    }

    /// The node at `path`, if any.
    pub fn node_at(&self, path: &DiffPath) -> Option<&DiffNode> {
        let mut cur = self;
        for &idx in &path.0 {
            cur = cur.inner.children.get(idx)?;
        }
        Some(cur)
    }

    /// Replace the subtree at `path`, returning the new tree (`None` if the path is
    /// invalid).
    ///
    /// Only the spine from the root to the edited node is rebuilt; every sibling subtree is
    /// shared (`Arc`-bumped, not cloned) with `self`, making the cost O(path length x
    /// branching factor) rather than O(tree size).
    pub fn replace_at(&self, path: &DiffPath, replacement: DiffNode) -> Option<DiffNode> {
        fn rec(node: &DiffNode, steps: &[usize], replacement: &DiffNode) -> Option<DiffNode> {
            match steps.split_first() {
                None => Some(replacement.clone()),
                Some((&idx, rest)) => {
                    if idx >= node.inner.children.len() {
                        return None;
                    }
                    let new_child = rec(&node.inner.children[idx], rest, replacement)?;
                    // Clone the child list (Arc bumps) and swap in the rebuilt child; the
                    // spine node itself is reconstructed so its caches stay correct.
                    let mut children = node.inner.children.clone();
                    children[idx] = new_child;
                    Some(DiffNode::make(node.inner.kind, node.inner.label, children))
                }
            }
        }
        rec(self, &path.0, &replacement)
    }

    /// Pre-order traversal of `(path, node)` pairs.
    pub fn walk(&self) -> Vec<(DiffPath, &DiffNode)> {
        let mut out = Vec::with_capacity(self.size());
        fn rec<'a>(node: &'a DiffNode, path: DiffPath, out: &mut Vec<(DiffPath, &'a DiffNode)>) {
            out.push((path.clone(), node));
            for (i, child) in node.inner.children.iter().enumerate() {
                rec(child, path.child(i), out);
            }
        }
        rec(self, DiffPath::root(), &mut out);
        out
    }

    /// Paths of every choice node, in pre-order.
    ///
    /// Subtrees without choice nodes are skipped entirely (their cached `choice_count` is
    /// zero), so the cost is proportional to the *choice-bearing* region of the tree.
    pub fn choice_paths(&self) -> Vec<DiffPath> {
        let mut out = Vec::with_capacity(self.choice_count());
        fn rec(node: &DiffNode, path: DiffPath, out: &mut Vec<DiffPath>) {
            if node.inner.choice_count == 0 {
                return;
            }
            if node.is_choice() {
                out.push(path.clone());
            }
            for (i, child) in node.inner.children.iter().enumerate() {
                rec(child, path.child(i), out);
            }
        }
        rec(self, DiffPath::root(), &mut out);
        out
    }

    /// Convert a *concrete* subtree (no choice nodes) back into the AST sequence it derives.
    ///
    /// Returns `None` if the subtree still contains choice nodes.
    pub fn to_ast_sequence(&self) -> Option<Vec<Ast>> {
        match self.inner.kind {
            DiffKind::All => {
                let label = self.label()?;
                if label.is_empty() {
                    return Some(Vec::new());
                }
                let mut children = Vec::new();
                for c in &self.inner.children {
                    children.extend(c.to_ast_sequence()?);
                }
                let ast = match &label.value {
                    Some(v) => Ast::with_value(label.kind, v.clone(), children),
                    None => Ast::new(label.kind, children),
                };
                Some(vec![ast])
            }
            _ => None,
        }
    }

    /// Canonicalise the subtree: deduplicate and sort the alternatives of every `Any` node
    /// by fingerprint. Used to compare search states structurally.
    ///
    /// Regions that are already canonical are returned as shared handles to the original
    /// subtrees, so canonicalising a mostly-canonical tree allocates almost nothing.
    pub fn canonical(&self) -> DiffNode {
        let mut changed = false;
        let mut children: Vec<DiffNode> = self
            .inner
            .children
            .iter()
            .map(|c| {
                let canonical = c.canonical();
                changed |= !DiffNode::ptr_eq(&canonical, c);
                canonical
            })
            .collect();
        if self.inner.kind == DiffKind::Any {
            let sorted = children
                .windows(2)
                .all(|w| w[0].fingerprint() < w[1].fingerprint());
            if !sorted {
                children.sort_by_key(DiffNode::fingerprint);
                children.dedup();
                changed = true;
            }
        }
        if changed {
            DiffNode::make(self.inner.kind, self.inner.label, children)
        } else {
            self.clone()
        }
    }

    /// A compact one-line rendering, e.g. `ANY[(ALL Select ...)(ALL Select ...)]`.
    pub fn sexpr(&self) -> String {
        let mut s = String::new();
        self.write_sexpr(&mut s);
        s
    }

    fn write_sexpr(&self, out: &mut String) {
        out.push('(');
        out.push_str(self.inner.kind.name());
        if let Some(l) = self.label() {
            out.push(' ');
            out.push_str(&l.render());
        }
        for c in &self.inner.children {
            out.push(' ');
            c.write_sexpr(out);
        }
        out.push(')');
    }
}

impl PartialEq for DiffNode {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return true;
        }
        if self.inner.fingerprint != other.inner.fingerprint || self.inner.size != other.inner.size
        {
            return false;
        }
        // Fingerprints matched: verify structurally. Shared subtrees short-circuit via the
        // pointer check above, so this walk only descends into unshared regions.
        self.inner.kind == other.inner.kind
            && self.inner.label == other.inner.label
            && self.inner.children == other.inner.children
    }
}

impl Eq for DiffNode {}

impl Hash for DiffNode {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.inner.fingerprint);
    }
}

impl Serialize for DiffNode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("kind".to_string(), self.inner.kind.to_value()),
            ("label".to_string(), self.inner.label.to_value()),
            ("children".to_string(), self.inner.children.to_value()),
        ])
    }
}

impl Deserialize for DiffNode {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = serde::expect_object(v, "DiffNode")?;
        let kind: DiffKind = serde::field(obj, "kind")?;
        let label: Option<LabelId> = serde::field(obj, "label")?;
        let children: Vec<DiffNode> = serde::field(obj, "children")?;
        Ok(DiffNode::make(kind, label, children))
    }
}

impl fmt::Display for DiffNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sexpr())
    }
}

/// A difftree: the root [`DiffNode`] of a search state.
///
/// The wrapper exists to host tree-level operations (expressibility over a whole query log,
/// rule application bookkeeping, fingerprints) while [`DiffNode`] stays a plain recursive
/// structure. Like its nodes, a `DiffTree` is a cheap handle: cloning it is one `Arc` bump,
/// which is what makes the MCTS search state O(1) to copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DiffTree {
    root: DiffNode,
}

impl DiffTree {
    /// Wrap a root node.
    pub fn new(root: DiffNode) -> Self {
        Self { root }
    }

    /// The root node.
    pub fn root(&self) -> &DiffNode {
        &self.root
    }

    /// Consume the tree and return its root.
    pub fn into_root(self) -> DiffNode {
        self.root
    }

    /// Number of nodes. O(1).
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Number of choice nodes. O(1).
    pub fn choice_count(&self) -> usize {
        self.root.choice_count()
    }

    /// Paths of all choice nodes (pre-order).
    pub fn choice_paths(&self) -> Vec<DiffPath> {
        self.root.choice_paths()
    }

    /// The node at a path.
    pub fn node_at(&self, path: &DiffPath) -> Option<&DiffNode> {
        self.root.node_at(path)
    }

    /// Replace the subtree at `path` (spine-copying; untouched subtrees stay shared).
    pub fn replace_at(&self, path: &DiffPath, replacement: DiffNode) -> Option<DiffTree> {
        self.root.replace_at(path, replacement).map(DiffTree::new)
    }

    /// Structural fingerprint of the canonical form (used to deduplicate search states).
    pub fn canonical_fingerprint(&self) -> u64 {
        self.root.canonical().fingerprint()
    }

    /// Structural fingerprint of the tree as-is. O(1).
    pub fn fingerprint(&self) -> u64 {
        self.root.fingerprint()
    }
}

impl fmt::Display for DiffTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.root.sexpr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctsui_sql::parse_query;

    fn q(sql: &str) -> Ast {
        parse_query(sql).unwrap()
    }

    #[test]
    fn from_ast_is_all_only_and_round_trips() {
        let ast = q("SELECT Sales FROM sales WHERE cty = 'USA'");
        let node = DiffNode::from_ast(&ast);
        assert!(node.is_concrete());
        assert_eq!(node.size(), ast.size());
        let seq = node.to_ast_sequence().unwrap();
        assert_eq!(seq, vec![ast]);
    }

    #[test]
    fn empty_alternative_derives_nothing() {
        let empty = DiffNode::empty();
        assert!(empty.is_empty_alt());
        assert_eq!(empty.to_ast_sequence().unwrap(), Vec::<Ast>::new());
    }

    #[test]
    fn choice_nodes_are_not_concrete() {
        let ast = q("SELECT Costs FROM sales");
        let any = DiffNode::any(vec![DiffNode::from_ast(&ast), DiffNode::empty()]);
        assert!(!any.is_concrete());
        assert!(any.to_ast_sequence().is_none());
        assert_eq!(any.choice_count(), 1);
    }

    #[test]
    fn walk_and_choice_paths() {
        let a = DiffNode::from_ast(&q("SELECT x FROM t"));
        let b = DiffNode::from_ast(&q("SELECT y FROM t"));
        let root = DiffNode::any(vec![a, b]);
        let tree = DiffTree::new(root);
        assert_eq!(tree.choice_paths(), vec![DiffPath::root()]);
        assert_eq!(tree.size(), tree.root().walk().len());
    }

    #[test]
    fn replace_at_and_node_at() {
        let a = DiffNode::from_ast(&q("SELECT x FROM t"));
        let b = DiffNode::from_ast(&q("SELECT y FROM t"));
        let tree = DiffTree::new(DiffNode::any(vec![a.clone(), b]));
        let path = DiffPath(vec![1]);
        let replaced = tree.replace_at(&path, a.clone()).unwrap();
        assert_eq!(replaced.node_at(&path), Some(&a));
        assert!(tree.replace_at(&DiffPath(vec![7]), a).is_none());
    }

    #[test]
    fn replace_at_shares_untouched_siblings() {
        let a = DiffNode::from_ast(&q("SELECT x FROM t"));
        let b = DiffNode::from_ast(&q("SELECT y FROM t"));
        let c = DiffNode::from_ast(&q("SELECT z FROM t"));
        let tree = DiffTree::new(DiffNode::any(vec![a, b, c]));

        let replacement = DiffNode::from_ast(&q("SELECT w FROM t"));
        let edited = tree
            .replace_at(&DiffPath(vec![1]), replacement.clone())
            .unwrap();

        // The edited child is the replacement itself; its siblings are pointer-equal to the
        // originals (shared, not deep-cloned).
        assert!(DiffNode::ptr_eq(
            edited.node_at(&DiffPath(vec![1])).unwrap(),
            &replacement
        ));
        for idx in [0usize, 2] {
            let path = DiffPath(vec![idx]);
            assert!(DiffNode::ptr_eq(
                edited.node_at(&path).unwrap(),
                tree.node_at(&path).unwrap()
            ));
        }
        // The spine (root) was rebuilt.
        assert!(!DiffNode::ptr_eq(edited.root(), tree.root()));
    }

    #[test]
    fn clone_is_a_shared_handle() {
        let tree = DiffTree::new(DiffNode::from_ast(&q(
            "select top 10 objid from stars where u between 0 and 30",
        )));
        let copy = tree.clone();
        assert!(DiffNode::ptr_eq(tree.root(), copy.root()));
        assert_eq!(tree, copy);
    }

    #[test]
    fn cached_metrics_match_recomputation() {
        let ast = q("select top 10 objid, ra from stars where u between 0 and 30 and g < 5");
        let node = DiffNode::from_ast(&ast);
        let tree = DiffTree::new(DiffNode::any(vec![node.clone(), DiffNode::empty()]));
        assert_eq!(tree.size(), tree.root().walk().len());
        let naive_choices = tree
            .root()
            .walk()
            .iter()
            .filter(|(_, n)| n.is_choice())
            .count();
        assert_eq!(tree.choice_count(), naive_choices);
        let naive_depth = fn_depth(tree.root());
        assert_eq!(tree.root().depth(), naive_depth);

        fn fn_depth(node: &DiffNode) -> usize {
            1 + node.children().iter().map(fn_depth).max().unwrap_or(0)
        }
    }

    #[test]
    fn fingerprints_are_structural() {
        let a = DiffNode::from_ast(&q("SELECT x FROM t"));
        let b = DiffNode::from_ast(&q("SELECT x FROM t"));
        let c = DiffNode::from_ast(&q("SELECT y FROM t"));
        // Equal structure, separate allocations: equal fingerprints.
        assert!(!DiffNode::ptr_eq(&a, &b));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a, c);
    }

    #[test]
    fn canonical_sorts_and_dedupes_any_children() {
        let a = DiffNode::from_ast(&q("SELECT x FROM t"));
        let b = DiffNode::from_ast(&q("SELECT y FROM t"));
        let t1 = DiffNode::any(vec![a.clone(), b.clone(), a.clone()]);
        let t2 = DiffNode::any(vec![b, a]);
        assert_eq!(t1.canonical(), t2.canonical());
        assert_eq!(t1.canonical().children().len(), 2);
        assert_eq!(
            DiffTree::new(t1).canonical_fingerprint(),
            DiffTree::new(t2).canonical_fingerprint()
        );
    }

    #[test]
    fn canonical_of_canonical_tree_is_shared() {
        let concrete = DiffNode::from_ast(&q("SELECT x FROM t"));
        let canonical = concrete.canonical();
        assert!(DiffNode::ptr_eq(&concrete, &canonical));
    }

    #[test]
    fn sexpr_readable() {
        let node = DiffNode::opt(DiffNode::from_ast(&q("SELECT x FROM t")));
        let s = node.sexpr();
        assert!(s.starts_with("(OPT (ALL Select"));
        assert!(s.contains("ColExpr:x"));
    }

    #[test]
    fn labels_render() {
        assert_eq!(Label::empty().render(), "Empty");
        let ast = q("SELECT x FROM t");
        let l = Label::of_ast(&ast);
        assert_eq!(l.render(), "Select");
    }

    #[test]
    fn diff_path_helpers() {
        let p = DiffPath(vec![0, 2]);
        assert_eq!(p.child(1), DiffPath(vec![0, 2, 1]));
        assert_eq!(p.parent(), Some(DiffPath(vec![0])));
        assert!(DiffPath::root().is_prefix_of(&p));
        assert!(!p.is_prefix_of(&DiffPath(vec![0])));
        assert_eq!(p.to_string(), "/0/2");
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let ast = q("select top 10 objid from stars where u between 0 and 30");
        let tree = DiffTree::new(DiffNode::any(vec![
            DiffNode::from_ast(&ast),
            DiffNode::empty(),
        ]));
        let json = serde_json::to_string(&tree).unwrap();
        let back: DiffTree = serde_json::from_str(&json).unwrap();
        assert_eq!(tree, back);
        // The deserialized tree recomputes identical caches.
        assert_eq!(tree.size(), back.size());
        assert_eq!(tree.fingerprint(), back.fingerprint());
    }
}
