//! Transformation rules over difftrees (the paper's Figure 5).
//!
//! Each state of the interface-generation search is a difftree; the neighbours of a state
//! are the difftrees reachable by applying one rule at one node. The intuition: the initial
//! difftree (an `ANY` over the raw query ASTs) represents the fully enumerated space, and
//! every rule factors out shared structure or variation so that the tree progressively turns
//! into a compact interface description.
//!
//! The implemented rules:
//!
//! | Rule | Direction | Effect |
//! |------|-----------|--------|
//! | [`RuleId::Any2All`] | forward | factor an `ANY` of same-labelled `ALL`s into an `ALL` of child-wise choices |
//! | [`RuleId::Any2AllInverse`] | backward | distribute one `ANY` child of an `ALL` back out |
//! | [`RuleId::Lift`] | forward | single-child special case of `Any2All` (paper keeps it separate) |
//! | [`RuleId::MultiMerge`] | forward | alternatives that repeat the same subtree collapse into a `MULTI` |
//! | [`RuleId::Multi`] | forward only | adjacent identical siblings collapse into a `MULTI` |
//! | [`RuleId::Optional`] | forward | `ANY{∅, ...}` becomes `OPT(...)` |
//! | [`RuleId::OptionalInverse`] | backward | `OPT(x)` becomes `ANY{x, ∅}` |
//! | [`RuleId::Noop`] | forward | collapse a singleton `ANY` |
//! | [`RuleId::DedupAny`] | forward | drop structurally duplicate alternatives of an `ANY` |
//! | [`RuleId::FlattenAny`] | forward | splice a nested `ANY` into its parent `ANY` |
//!
//! Every rule is language-preserving in the direction that matters for the search: the set of
//! queries expressible by the *new* tree is a superset of the set expressible by the old tree
//! (the paper points out that the factored difftree of its Figure 4 expresses more queries
//! than the initial one). In particular every input query stays expressible, which the
//! property tests in this module and in `tests/` verify.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::index::ActionIndex;
use crate::node::{DiffKind, DiffNode, DiffPath, DiffTree, LabelId};

/// Identifier of a transformation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RuleId {
    /// Factor an `ANY` whose alternatives share a root label into an `ALL` of choices.
    Any2All,
    /// Distribute one `ANY` child of an `ALL` node back out (bidirectional counterpart).
    Any2AllInverse,
    /// Lift the common root above an `ANY` when every alternative has exactly one child.
    Lift,
    /// Collapse alternatives that repeat the same subtree (with different counts) into `MULTI`.
    MultiMerge,
    /// Collapse a run of adjacent identical siblings of an `ALL` node into `MULTI` (one-way).
    Multi,
    /// Replace `ANY{∅, xs...}` with `OPT(...)`.
    Optional,
    /// Replace `OPT(x)` with `ANY{x, ∅}`.
    OptionalInverse,
    /// Collapse an `ANY` with a single alternative.
    Noop,
    /// Remove duplicate alternatives from an `ANY`.
    DedupAny,
    /// Splice the alternatives of a nested `ANY` into its parent `ANY`.
    FlattenAny,
}

impl RuleId {
    /// Every rule, in a stable order.
    pub const ALL: [RuleId; 10] = [
        RuleId::Any2All,
        RuleId::Any2AllInverse,
        RuleId::Lift,
        RuleId::MultiMerge,
        RuleId::Multi,
        RuleId::Optional,
        RuleId::OptionalInverse,
        RuleId::Noop,
        RuleId::DedupAny,
        RuleId::FlattenAny,
    ];

    /// The forward (simplifying) subset used by greedy baselines.
    pub const FORWARD: [RuleId; 8] = [
        RuleId::Any2All,
        RuleId::Lift,
        RuleId::MultiMerge,
        RuleId::Multi,
        RuleId::Optional,
        RuleId::Noop,
        RuleId::DedupAny,
        RuleId::FlattenAny,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            RuleId::Any2All => "Any2All",
            RuleId::Any2AllInverse => "Any2AllInverse",
            RuleId::Lift => "Lift",
            RuleId::MultiMerge => "MultiMerge",
            RuleId::Multi => "Multi",
            RuleId::Optional => "Optional",
            RuleId::OptionalInverse => "OptionalInverse",
            RuleId::Noop => "Noop",
            RuleId::DedupAny => "DedupAny",
            RuleId::FlattenAny => "FlattenAny",
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete opportunity to apply a rule: which rule, at which node, with an optional
/// rule-specific argument (e.g. which child index to expand for [`RuleId::Any2AllInverse`],
/// or the start of the sibling run for [`RuleId::Multi`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RuleApplication {
    /// The rule to apply.
    pub rule: RuleId,
    /// Path of the target node.
    pub path: DiffPath,
    /// Rule-specific argument (child index or run start), if the rule needs one.
    pub arg: Option<usize>,
}

impl RuleApplication {
    fn new(rule: RuleId, path: DiffPath) -> Self {
        Self {
            rule,
            path,
            arg: None,
        }
    }

    fn with_arg(rule: RuleId, path: DiffPath, arg: usize) -> Self {
        Self {
            rule,
            path,
            arg: Some(arg),
        }
    }
}

/// The behaviour shared by every transformation rule.
pub trait Rule {
    /// The rule's identifier.
    fn id(&self) -> RuleId;

    /// All the ways this rule can be applied to the node at `path` (unfiltered: the
    /// engine-level `Any2AllInverse` alternative cap is not applied here).
    fn bindings(&self, node: &DiffNode, path: &DiffPath) -> Vec<RuleApplication> {
        let mut out = Vec::new();
        push_rule_bindings(self.id(), node, path, usize::MAX, &mut out);
        out
    }

    /// Rewrite the target node. `arg` carries the binding's argument.
    /// Returns `None` if the node no longer matches (defensive; should not normally happen).
    fn rewrite(&self, node: &DiffNode, arg: Option<usize>) -> Option<DiffNode>;
}

/// Statically dispatched binding matcher: append every way `rule` applies to `node` (whose
/// position is `path`) to `out`. This is the single source of truth for rule applicability —
/// the reference scan, the action index and the trait impls all route through it — and it
/// never allocates beyond the pushed applications (no boxed rule objects, no per-rule
/// vectors).
///
/// `max_inverse_alternatives` caps the fanout of [`RuleId::Any2AllInverse`] bindings (pass
/// `usize::MAX` for the unfiltered set).
pub(crate) fn push_rule_bindings(
    rule: RuleId,
    node: &DiffNode,
    path: &DiffPath,
    max_inverse_alternatives: usize,
    out: &mut Vec<RuleApplication>,
) {
    match rule {
        RuleId::Any2All => {
            if Any2All::matches(node) {
                out.push(RuleApplication::new(rule, path.clone()));
            } else {
                // Heterogeneous ANY (e.g. a log mixing WITH and plain SELECT roots): factor
                // each same-labelled subgroup on its own. The binding's arg is the index of
                // the subgroup's first member.
                for start in Any2All::label_groups(node) {
                    out.push(RuleApplication::with_arg(rule, path.clone(), start));
                }
            }
        }
        RuleId::Any2AllInverse => {
            if node.kind() == DiffKind::All {
                for (i, child) in node.children().iter().enumerate() {
                    if child.kind() == DiffKind::Any
                        && child.children().len() <= max_inverse_alternatives
                    {
                        out.push(RuleApplication::with_arg(rule, path.clone(), i));
                    }
                }
            }
        }
        RuleId::Lift => {
            if Lift::matches(node) {
                out.push(RuleApplication::new(rule, path.clone()));
            }
        }
        RuleId::MultiMerge => {
            if MultiMerge::repeated_subtree(node).is_some() {
                out.push(RuleApplication::new(rule, path.clone()));
            }
        }
        RuleId::Multi => {
            for start in MultiRule::runs(node) {
                out.push(RuleApplication::with_arg(rule, path.clone(), start));
            }
        }
        RuleId::Optional => {
            if Optional::matches(node) {
                out.push(RuleApplication::new(rule, path.clone()));
            }
        }
        RuleId::OptionalInverse => {
            if node.kind() == DiffKind::Opt && node.children().len() == 1 {
                out.push(RuleApplication::new(rule, path.clone()));
            }
        }
        RuleId::Noop => {
            if node.kind() == DiffKind::Any && node.children().len() == 1 {
                out.push(RuleApplication::new(rule, path.clone()));
            }
        }
        RuleId::DedupAny => {
            if DedupAny::matches(node) {
                out.push(RuleApplication::new(rule, path.clone()));
            }
        }
        RuleId::FlattenAny => {
            if FlattenAny::matches(node) {
                out.push(RuleApplication::new(rule, path.clone()));
            }
        }
    }
}

/// Statically dispatched rewrite: apply `rule` to `node` with the binding's `arg`.
pub(crate) fn rewrite_rule(rule: RuleId, node: &DiffNode, arg: Option<usize>) -> Option<DiffNode> {
    match rule {
        RuleId::Any2All => Any2All.rewrite(node, arg),
        RuleId::Any2AllInverse => Any2AllInverse.rewrite(node, arg),
        RuleId::Lift => Lift.rewrite(node, arg),
        RuleId::MultiMerge => MultiMerge.rewrite(node, arg),
        RuleId::Multi => MultiRule.rewrite(node, arg),
        RuleId::Optional => Optional.rewrite(node, arg),
        RuleId::OptionalInverse => OptionalInverse.rewrite(node, arg),
        RuleId::Noop => Noop.rewrite(node, arg),
        RuleId::DedupAny => DedupAny.rewrite(node, arg),
        RuleId::FlattenAny => FlattenAny.rewrite(node, arg),
    }
}

/// The rule engine: a configurable set of rules plus applicability indexing, scanning and
/// application.
///
/// Action generation is served by a shared [`ActionIndex`] (fingerprint-memoized per-subtree
/// binding summaries): after one `replace_at` only the edited spine is re-matched, every
/// off-spine subtree hits the memo, and revisited states are a root lookup. Clones of an
/// engine share the index, so every worker of a root-parallel search feeds the same cache.
/// [`RuleEngine::applicable_scan`] keeps the full-walk reference implementation for tests
/// and benchmarks.
#[derive(Clone)]
pub struct RuleEngine {
    rules: Vec<RuleId>,
    /// Cap on the number of alternatives produced by `Any2AllInverse` (guards blow-up).
    max_inverse_alternatives: usize,
    /// Shared incremental action index for this engine configuration.
    index: Arc<ActionIndex>,
}

impl Default for RuleEngine {
    fn default() -> Self {
        Self::new(RuleId::ALL.to_vec())
    }
}

impl RuleEngine {
    /// An engine using the given rules.
    pub fn new(rules: Vec<RuleId>) -> Self {
        Self::with_config(rules, 12)
    }

    fn with_config(rules: Vec<RuleId>, max_inverse_alternatives: usize) -> Self {
        let index = Arc::new(ActionIndex::new(rules.clone(), max_inverse_alternatives));
        Self {
            rules,
            max_inverse_alternatives,
            index,
        }
    }

    /// An engine with only the forward (simplifying) rules.
    pub fn forward_only() -> Self {
        Self::new(RuleId::FORWARD.to_vec())
    }

    /// The same rule set with a different `Any2AllInverse` alternative cap. Builds a fresh
    /// index: the cap changes which bindings exist, so cached summaries cannot carry over.
    pub fn with_max_inverse_alternatives(self, cap: usize) -> Self {
        Self::with_config(self.rules, cap)
    }

    /// The rules this engine considers.
    pub fn rules(&self) -> &[RuleId] {
        &self.rules
    }

    /// Cap on the number of alternatives produced by `Any2AllInverse`.
    pub fn max_inverse_alternatives(&self) -> usize {
        self.max_inverse_alternatives
    }

    /// The shared action index backing this engine's applicability queries.
    pub fn action_index(&self) -> &ActionIndex {
        &self.index
    }

    /// Every applicable `(rule, node)` pair of the current tree, in reference-scan order.
    /// The length of the returned vector is the *fanout* of the search state.
    ///
    /// Served by the incremental [`ActionIndex`]: the first query for a state computes
    /// subtree summaries bottom-up, edits re-match only the changed spine, and revisits are
    /// a root lookup plus an output-sized materialisation.
    pub fn applicable(&self, tree: &DiffTree) -> Vec<RuleApplication> {
        self.index.applicable(tree)
    }

    /// Reference implementation of [`RuleEngine::applicable`]: a full pre-order walk
    /// matching every rule at every node, with no memoization. The index path is
    /// property-tested against this scan; benchmarks use it as the baseline.
    pub fn applicable_scan(&self, tree: &DiffTree) -> Vec<RuleApplication> {
        let mut out = Vec::new();
        for (path, node) in tree.root().walk() {
            for rule in &self.rules {
                push_rule_bindings(*rule, node, &path, self.max_inverse_alternatives, &mut out);
            }
        }
        out
    }

    /// The fanout of the state — `applicable(tree).len()` without materialising anything.
    /// O(1) once the state's root summary is cached.
    pub fn count_applicable(&self, tree: &DiffTree) -> usize {
        self.index.count_applicable(tree)
    }

    /// The `n`-th applicable application (0-based, reference-scan order) materialised alone
    /// in O(depth × branching); `None` when `n` is out of range.
    pub fn nth_applicable(&self, tree: &DiffTree, n: usize) -> Option<RuleApplication> {
        self.index.nth_applicable(tree, n)
    }

    /// The first applicable application in reference-scan order without computing the full
    /// vector — the short-circuiting form of `applicable(tree).first()`.
    pub fn first_applicable(&self, tree: &DiffTree) -> Option<RuleApplication> {
        self.index.first_applicable(tree)
    }

    /// Draw one applicable application uniformly at random (same distribution as uniformly
    /// indexing the materialised vector), or `None` for a dead-end state.
    pub fn sample_applicable<R: rand::Rng>(
        &self,
        tree: &DiffTree,
        rng: &mut R,
    ) -> Option<RuleApplication> {
        self.index.sample_applicable(tree, rng)
    }

    /// Apply a rule application to the tree, producing the successor state.
    ///
    /// Returns `None` if the application does not (or no longer) match the tree — a stale
    /// application captured before an edit is rejected, never a panic.
    pub fn apply(&self, tree: &DiffTree, application: &RuleApplication) -> Option<DiffTree> {
        let node = tree.node_at(&application.path)?;
        let rewritten = rewrite_rule(application.rule, node, application.arg)?;
        tree.replace_at(&application.path, rewritten)
    }

    /// Repeatedly apply the *forward* (simplifying) rules until none applies or `max_steps`
    /// is reached, always taking the first applicable rule in scan order.
    ///
    /// This is not a search — it is the deterministic "fully factored" normal form used by
    /// greedy baselines and by tests that need a reasonable non-trivial difftree quickly.
    /// Each step takes only [`RuleEngine::first_applicable`], so no step pays for the full
    /// fanout vector, and consecutive states share their off-spine summaries in the index.
    pub fn saturate_forward(&self, tree: &DiffTree, max_steps: usize) -> DiffTree {
        let forward_owned;
        let forward = if self.rules == RuleId::FORWARD {
            self
        } else {
            forward_owned = RuleEngine::forward_only();
            &forward_owned
        };
        let mut current = tree.clone();
        for _ in 0..max_steps {
            let Some(app) = forward.first_applicable(&current) else {
                break;
            };
            match forward.apply(&current, &app) {
                Some(next) => current = next,
                None => break,
            }
        }
        current
    }
}

// ---------------------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------------------

/// True if every child of `node` is an `All` node carrying the same non-empty label; returns
/// that label. Labels are interned, so the comparison per child is a pointer check.
fn common_all_label(node: &DiffNode) -> Option<LabelId> {
    if node.kind() != DiffKind::Any || node.children().len() < 2 {
        return None;
    }
    let mut label: Option<LabelId> = None;
    for child in node.children() {
        if child.kind() != DiffKind::All {
            return None;
        }
        let l = child.label_id()?;
        if l.is_empty() {
            return None;
        }
        match label {
            None => label = Some(l),
            Some(existing) if existing == l => {}
            Some(_) => return None,
        }
    }
    label
}

/// Alignment of the child lists of several alternatives into columns.
///
/// `columns[c][a]` is the child of alternative `a` assigned to column `c` (or `None`).
/// Column order is consistent with every alternative's own child order.
fn align_alternative_children(alternatives: &[&DiffNode]) -> Vec<Vec<Option<DiffNode>>> {
    let n = alternatives.len();
    let mut columns: Vec<Vec<Option<DiffNode>>> = Vec::new();

    // Seed with the first alternative's children.
    for child in alternatives[0].children() {
        let mut col = vec![None; n];
        col[0] = Some(child.clone());
        columns.push(col);
    }

    for (a, alt) in alternatives.iter().enumerate().skip(1) {
        // LCS between current column keys and this alternative's child keys, then a standard
        // three-way merge walk so both the existing column order and this alternative's own
        // child order are preserved.
        let col_keys: Vec<u64> = columns.iter().map(|c| column_key(c)).collect();
        let alt_keys: Vec<u64> = alt.children().iter().map(node_key).collect();
        let matches = lcs_pairs(&col_keys, &alt_keys);

        let mut merged: Vec<Vec<Option<DiffNode>>> = Vec::with_capacity(columns.len() + 2);
        let (mut ci, mut ai) = (0usize, 0usize);
        let sentinel = (columns.len(), alt.children().len());
        for &(mc, ma) in matches.iter().chain(std::iter::once(&sentinel)) {
            // Unmatched existing columns before the next match keep their order and get no
            // entry for this alternative.
            while ci < mc {
                merged.push(std::mem::take(&mut columns[ci]));
                ci += 1;
            }
            // Unmatched children of this alternative become fresh columns.
            while ai < ma {
                let mut col = vec![None; n];
                col[a] = Some(alt.children()[ai].clone());
                merged.push(col);
                ai += 1;
            }
            // The matched pair itself.
            if mc < columns.len() && ma < alt.children().len() {
                let mut col = std::mem::take(&mut columns[mc]);
                col[a] = Some(alt.children()[ma].clone());
                merged.push(col);
                ci += 1;
                ai += 1;
            }
        }
        columns = merged;
    }
    columns
}

/// Key used to align children across alternatives: the label (kind only) for `All` nodes so
/// that value changes still align, and the node kind for choice nodes.
fn node_key(node: &DiffNode) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    match node.label() {
        Some(l) => {
            0u8.hash(&mut h);
            l.kind.hash(&mut h);
        }
        None => {
            1u8.hash(&mut h);
            node.kind().hash(&mut h);
        }
    }
    h.finish()
}

fn column_key(col: &[Option<DiffNode>]) -> u64 {
    col.iter().flatten().next().map(node_key).unwrap_or(0)
}

/// Longest common subsequence between two key sequences, returned as index pairs.
fn lcs_pairs(a: &[u64], b: &[u64]) -> Vec<(usize, usize)> {
    let n = a.len();
    let m = b.len();
    let mut lcs = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Deduplicate a list of nodes, preserving first-occurrence order.
fn dedup_nodes(nodes: Vec<DiffNode>) -> Vec<DiffNode> {
    let mut out: Vec<DiffNode> = Vec::with_capacity(nodes.len());
    for n in nodes {
        if !out.contains(&n) {
            out.push(n);
        }
    }
    out
}

/// Wrap a set of alternatives into the smallest equivalent node: the node itself when there
/// is exactly one distinct alternative, an `Any` otherwise.
fn any_or_single(alternatives: Vec<DiffNode>) -> DiffNode {
    let mut alternatives = dedup_nodes(alternatives);
    if alternatives.len() == 1 {
        alternatives.pop().expect("non-empty")
    } else {
        DiffNode::any(alternatives)
    }
}

// ---------------------------------------------------------------------------------------
// Rule implementations
// ---------------------------------------------------------------------------------------

struct Any2All;

impl Any2All {
    fn matches(node: &DiffNode) -> bool {
        let Some(_) = common_all_label(node) else {
            return false;
        };
        // Leave the single-child case to Lift so the two rules stay disjoint (the paper lists
        // both as separate rules).
        !node.children().iter().all(|c| c.children().len() == 1)
    }

    /// First-member indices of every >= 2-member group of same-labelled `All` alternatives
    /// in a *heterogeneous* `ANY` (one where [`common_all_label`] fails). Each group is an
    /// island of factorable structure the whole-node rule cannot reach.
    fn label_groups(node: &DiffNode) -> Vec<usize> {
        if node.kind() != DiffKind::Any
            || node.children().len() < 2
            || common_all_label(node).is_some()
        {
            return Vec::new();
        }
        // (label, first index, member count) per distinct label, in first-occurrence order.
        let mut groups: Vec<(LabelId, usize, usize)> = Vec::new();
        for (i, child) in node.children().iter().enumerate() {
            if child.kind() != DiffKind::All {
                continue;
            }
            let Some(label) = child.label_id() else {
                continue;
            };
            if label.is_empty() {
                continue;
            }
            match groups.iter_mut().find(|(l, _, _)| *l == label) {
                Some(entry) => entry.2 += 1,
                None => groups.push((label, i, 1)),
            }
        }
        groups
            .into_iter()
            .filter(|&(_, _, count)| count >= 2)
            .map(|(_, first, _)| first)
            .collect()
    }

    /// Column-align `members` (all `All` nodes labelled `label`) and factor them into one
    /// `All` of child-wise choices — the core of both the whole-node and subgroup rewrites.
    fn factor_members(members: &[&DiffNode], label: LabelId) -> DiffNode {
        let columns = align_alternative_children(members);
        let n = members.len();
        let mut new_children = Vec::with_capacity(columns.len());
        for col in columns {
            let present: Vec<DiffNode> = col.iter().flatten().cloned().collect();
            let missing = present.len() < n;
            let inner = any_or_single(present);
            if missing {
                // Represent optionality with OPT directly (equivalently ANY{x, ∅}; using OPT
                // keeps trees small — OptionalInverse can re-expand it if the search wants).
                new_children.push(DiffNode::opt(inner));
            } else {
                new_children.push(inner);
            }
        }
        DiffNode::all_interned(label, new_children)
    }

    /// Subgroup rewrite: factor the same-labelled group whose first member sits at `start`,
    /// leaving every other alternative of the `ANY` in place.
    fn rewrite_group(node: &DiffNode, start: usize) -> Option<DiffNode> {
        if node.kind() != DiffKind::Any {
            return None;
        }
        let target = node.children().get(start)?;
        if target.kind() != DiffKind::All {
            return None;
        }
        let label = target.label_id()?;
        if label.is_empty() {
            return None;
        }
        let member_idx: Vec<usize> = node
            .children()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind() == DiffKind::All && c.label_id() == Some(label))
            .map(|(i, _)| i)
            .collect();
        // Stale-binding defense: a valid binding always points at the group's first member
        // and the group must still have something to merge.
        if member_idx.len() < 2 || member_idx[0] != start {
            return None;
        }
        let members: Vec<&DiffNode> = member_idx.iter().map(|&i| &node.children()[i]).collect();
        let factored = Self::factor_members(&members, label);

        let mut alternatives = Vec::with_capacity(node.children().len() - member_idx.len() + 1);
        for (i, child) in node.children().iter().enumerate() {
            if i == start {
                alternatives.push(factored.clone());
            } else if !member_idx.contains(&i) {
                alternatives.push(child.clone());
            }
        }
        Some(any_or_single(alternatives))
    }
}

impl Rule for Any2All {
    fn id(&self) -> RuleId {
        RuleId::Any2All
    }

    fn rewrite(&self, node: &DiffNode, arg: Option<usize>) -> Option<DiffNode> {
        if let Some(start) = arg {
            return Self::rewrite_group(node, start);
        }
        let label = common_all_label(node)?;
        if !Self::matches(node) {
            return None;
        }
        let alternatives: Vec<&DiffNode> = node.children().iter().collect();
        Some(Self::factor_members(&alternatives, label))
    }
}

struct Lift;

impl Lift {
    fn matches(node: &DiffNode) -> bool {
        common_all_label(node).is_some() && node.children().iter().all(|c| c.children().len() == 1)
    }
}

impl Rule for Lift {
    fn id(&self) -> RuleId {
        RuleId::Lift
    }

    fn rewrite(&self, node: &DiffNode, _arg: Option<usize>) -> Option<DiffNode> {
        if !Self::matches(node) {
            return None;
        }
        let label = common_all_label(node)?;
        let inner: Vec<DiffNode> = node
            .children()
            .iter()
            .map(|c| c.children()[0].clone())
            .collect();
        Some(DiffNode::all_interned(label, vec![any_or_single(inner)]))
    }
}

struct MultiMerge;

impl MultiMerge {
    /// Returns the repeated subtree when the rule matches.
    fn repeated_subtree(node: &DiffNode) -> Option<DiffNode> {
        common_all_label(node)?;
        let mut repeated: Option<&DiffNode> = None;
        let mut counts = Vec::new();
        for alt in node.children() {
            if alt.children().is_empty() {
                counts.push(0usize);
                continue;
            }
            let first = &alt.children()[0];
            if !alt.children().iter().all(|c| c == first) {
                return None;
            }
            match repeated {
                None => repeated = Some(first),
                Some(existing) if existing == first => {}
                Some(_) => return None,
            }
            counts.push(alt.children().len());
        }
        let repeated = repeated?;
        counts.sort_unstable();
        counts.dedup();
        // Require at least two distinct repetition counts, otherwise this is not a
        // "repetition" pattern (Lift / Any2All handle the equal-count case better).
        (counts.len() >= 2).then(|| repeated.clone())
    }
}

impl Rule for MultiMerge {
    fn id(&self) -> RuleId {
        RuleId::MultiMerge
    }

    fn rewrite(&self, node: &DiffNode, _arg: Option<usize>) -> Option<DiffNode> {
        let repeated = Self::repeated_subtree(node)?;
        let label = common_all_label(node)?;
        Some(DiffNode::all_interned(
            label,
            vec![DiffNode::multi(repeated)],
        ))
    }
}

struct MultiRule;

impl MultiRule {
    /// Starts of maximal runs of >= 2 adjacent identical children.
    fn runs(node: &DiffNode) -> Vec<usize> {
        if node.kind() != DiffKind::All {
            return Vec::new();
        }
        let children = node.children();
        let mut out = Vec::new();
        let mut i = 0;
        while i < children.len() {
            let mut j = i + 1;
            while j < children.len() && children[j] == children[i] {
                j += 1;
            }
            if j - i >= 2 {
                out.push(i);
            }
            i = j;
        }
        out
    }
}

impl Rule for MultiRule {
    fn id(&self) -> RuleId {
        RuleId::Multi
    }

    fn rewrite(&self, node: &DiffNode, arg: Option<usize>) -> Option<DiffNode> {
        let start = arg?;
        if node.kind() != DiffKind::All {
            return None;
        }
        let children = node.children();
        let target = children.get(start)?;
        let mut end = start + 1;
        while end < children.len() && &children[end] == target {
            end += 1;
        }
        if end - start < 2 {
            return None;
        }
        let mut new_children = Vec::with_capacity(children.len() - (end - start) + 1);
        new_children.extend_from_slice(&children[..start]);
        new_children.push(DiffNode::multi(target.clone()));
        new_children.extend_from_slice(&children[end..]);
        Some(DiffNode::all_interned(node.label_id()?, new_children))
    }
}

struct Optional;

impl Optional {
    fn matches(node: &DiffNode) -> bool {
        node.kind() == DiffKind::Any
            && node.children().iter().any(DiffNode::is_empty_alt)
            && node.children().iter().any(|c| !c.is_empty_alt())
    }
}

impl Rule for Optional {
    fn id(&self) -> RuleId {
        RuleId::Optional
    }

    fn rewrite(&self, node: &DiffNode, _arg: Option<usize>) -> Option<DiffNode> {
        if !Self::matches(node) {
            return None;
        }
        let non_empty: Vec<DiffNode> = node
            .children()
            .iter()
            .filter(|c| !c.is_empty_alt())
            .cloned()
            .collect();
        Some(DiffNode::opt(any_or_single(non_empty)))
    }
}

struct OptionalInverse;

impl Rule for OptionalInverse {
    fn id(&self) -> RuleId {
        RuleId::OptionalInverse
    }

    fn rewrite(&self, node: &DiffNode, _arg: Option<usize>) -> Option<DiffNode> {
        if node.kind() != DiffKind::Opt {
            return None;
        }
        let child = node.children().first()?.clone();
        Some(DiffNode::any(vec![child, DiffNode::empty()]))
    }
}

struct Noop;

impl Rule for Noop {
    fn id(&self) -> RuleId {
        RuleId::Noop
    }

    fn rewrite(&self, node: &DiffNode, _arg: Option<usize>) -> Option<DiffNode> {
        if node.kind() == DiffKind::Any && node.children().len() == 1 {
            Some(node.children()[0].clone())
        } else {
            None
        }
    }
}

struct DedupAny;

impl DedupAny {
    fn matches(node: &DiffNode) -> bool {
        if node.kind() != DiffKind::Any {
            return false;
        }
        // Allocation-free duplicate scan: this predicate runs for every node of every state
        // the search touches, so it must not clone subtrees.
        node.children()
            .iter()
            .enumerate()
            .any(|(i, c)| node.children()[..i].contains(c))
    }
}

impl Rule for DedupAny {
    fn id(&self) -> RuleId {
        RuleId::DedupAny
    }

    fn rewrite(&self, node: &DiffNode, _arg: Option<usize>) -> Option<DiffNode> {
        if !Self::matches(node) {
            return None;
        }
        Some(DiffNode::any(dedup_nodes(node.children().to_vec())))
    }
}

struct FlattenAny;

impl FlattenAny {
    fn matches(node: &DiffNode) -> bool {
        node.kind() == DiffKind::Any && node.children().iter().any(|c| c.kind() == DiffKind::Any)
    }
}

impl Rule for FlattenAny {
    fn id(&self) -> RuleId {
        RuleId::FlattenAny
    }

    fn rewrite(&self, node: &DiffNode, _arg: Option<usize>) -> Option<DiffNode> {
        if !Self::matches(node) {
            return None;
        }
        let mut flat = Vec::new();
        for child in node.children() {
            if child.kind() == DiffKind::Any {
                flat.extend(child.children().iter().cloned());
            } else {
                flat.push(child.clone());
            }
        }
        Some(DiffNode::any(flat))
    }
}

struct Any2AllInverse;

impl Rule for Any2AllInverse {
    fn id(&self) -> RuleId {
        RuleId::Any2AllInverse
    }

    fn rewrite(&self, node: &DiffNode, arg: Option<usize>) -> Option<DiffNode> {
        let idx = arg?;
        if node.kind() != DiffKind::All {
            return None;
        }
        let label = node.label_id()?;
        let any_child = node.children().get(idx)?;
        if any_child.kind() != DiffKind::Any {
            return None;
        }
        let mut alternatives = Vec::with_capacity(any_child.children().len());
        for option in any_child.children() {
            let mut new_children = node.children().to_vec();
            new_children[idx] = option.clone();
            alternatives.push(DiffNode::all_interned(label, new_children));
        }
        Some(DiffNode::any(alternatives))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::{express, expresses_all};
    use mctsui_sql::{parse_query, Ast};

    fn q(sql: &str) -> Ast {
        parse_query(sql).unwrap()
    }

    fn figure1_queries() -> Vec<Ast> {
        vec![
            q("SELECT Sales FROM sales WHERE cty = 'USA'"),
            q("SELECT Costs FROM sales WHERE cty = 'EUR'"),
            q("SELECT Costs FROM sales"),
        ]
    }

    fn initial(queries: &[Ast]) -> DiffTree {
        DiffTree::new(DiffNode::any(
            queries.iter().map(DiffNode::from_ast).collect(),
        ))
    }

    #[test]
    fn any2all_factors_figure1_tree() {
        let queries = figure1_queries();
        let tree = initial(&queries);
        let engine = RuleEngine::default();
        let apps = engine.applicable(&tree);
        let any2all: Vec<_> = apps.iter().filter(|a| a.rule == RuleId::Any2All).collect();
        assert_eq!(any2all.len(), 1, "root ANY should admit Any2All");
        let factored = engine.apply(&tree, any2all[0]).unwrap();

        // The factored tree is rooted at ALL(Select) ...
        assert_eq!(factored.root().kind(), DiffKind::All);
        assert_eq!(
            factored.root().label().unwrap().kind,
            mctsui_sql::NodeKind::Select
        );
        // ... and still expresses every input query (indeed more, per the paper).
        assert!(expresses_all(factored.root(), &queries));
        // The WHERE clause column became optional because q3 lacks it.
        assert!(factored
            .root()
            .children()
            .iter()
            .any(|c| c.kind() == DiffKind::Opt));
    }

    #[test]
    fn any2all_factors_label_subgroups_in_mixed_root_any() {
        // The snowflake:268 shape: a log mixing WITH-rooted and SELECT-rooted queries. The
        // root ANY has no common label, so the whole-node rule is silent — but each
        // same-labelled subgroup must still get its own factoring binding.
        let queries = vec![
            q("WITH c AS (SELECT x FROM t) SELECT x FROM c"),
            q("WITH c AS (SELECT y FROM t) SELECT y FROM c"),
            q("SELECT Sales FROM sales WHERE cty = 'USA'"),
            q("SELECT Costs FROM sales"),
        ];
        let tree = initial(&queries);
        let engine = RuleEngine::default();
        let apps: Vec<_> = engine
            .applicable(&tree)
            .into_iter()
            .filter(|a| a.rule == RuleId::Any2All && a.path == DiffPath::root())
            .collect();
        // One binding per >= 2-member label group: the WITH pair and the SELECT pair.
        assert_eq!(apps.len(), 2, "expected one binding per label subgroup");
        assert_eq!(
            apps.iter().map(|a| a.arg).collect::<Vec<_>>(),
            vec![Some(0), Some(2)]
        );

        // Applying either binding factors that subgroup while everything still expresses.
        for app in &apps {
            let factored = engine.apply(&tree, app).unwrap();
            assert_eq!(factored.root().kind(), DiffKind::Any);
            // Two members merged into one alternative: 4 -> 3.
            assert_eq!(factored.root().children().len(), 3);
            assert!(expresses_all(factored.root(), &queries));
        }

        // Applying both in sequence leaves ANY{ALL(With), ALL(Select)} and terminates:
        // no further root-level Any2All bindings exist.
        let once = engine.apply(&tree, &apps[0]).unwrap();
        let again = engine
            .applicable(&once)
            .into_iter()
            .find(|a| a.rule == RuleId::Any2All && a.path == DiffPath::root())
            .unwrap();
        let twice = engine.apply(&once, &again).unwrap();
        assert_eq!(twice.root().children().len(), 2);
        assert!(expresses_all(twice.root(), &queries));
        assert!(!engine
            .applicable(&twice)
            .iter()
            .any(|a| a.rule == RuleId::Any2All && a.path == DiffPath::root()));
    }

    #[test]
    fn any2all_group_rewrite_rejects_stale_bindings() {
        let queries = [
            q("WITH c AS (SELECT x FROM t) SELECT x FROM c"),
            q("WITH c AS (SELECT y FROM t) SELECT y FROM c"),
            q("SELECT Costs FROM sales"),
        ];
        let any = DiffNode::any(queries.iter().map(DiffNode::from_ast).collect());
        // Not the first member of its group.
        assert!(Any2All::rewrite_group(&any, 1).is_none());
        // A single-member "group" has nothing to merge.
        assert!(Any2All::rewrite_group(&any, 2).is_none());
        // Out of bounds.
        assert!(Any2All::rewrite_group(&any, 9).is_none());
    }

    #[test]
    fn any2all_homogeneous_any_gets_no_subgroup_bindings() {
        // When the whole node factors at once, subgroup bindings must stay silent so the
        // figure-1 pin (exactly one Any2All binding) keeps holding.
        let queries = figure1_queries();
        let any = DiffNode::any(queries.iter().map(DiffNode::from_ast).collect());
        assert!(Any2All::label_groups(&any).is_empty());
        let apps = Any2All::bindings(&Any2All, &any, &DiffPath::root());
        assert_eq!(apps.len(), 1);
        assert_eq!(apps[0].arg, None);
    }

    #[test]
    fn any2all_skips_single_child_case_for_lift() {
        // Both alternatives have exactly one child -> Lift matches, Any2All does not.
        let a = DiffNode::from_ast(&q("select x from t").children()[0]);
        let b = DiffNode::from_ast(&q("select y from t").children()[0]);
        let any = DiffNode::any(vec![a, b]);
        assert!(Any2All::bindings(&Any2All, &any, &DiffPath::root()).is_empty());
        assert_eq!(Lift::bindings(&Lift, &any, &DiffPath::root()).len(), 1);
    }

    #[test]
    fn lift_pulls_common_root_up() {
        let q1 = q("SELECT Sales FROM sales");
        let q2 = q("SELECT Costs FROM sales");
        // ANY over the two Project nodes (each with one ProjItem child).
        let any = DiffNode::any(vec![
            DiffNode::from_ast(&q1.children()[0]),
            DiffNode::from_ast(&q2.children()[0]),
        ]);
        let lifted = Lift.rewrite(&any, None).unwrap();
        assert_eq!(lifted.kind(), DiffKind::All);
        assert_eq!(lifted.label().unwrap().kind, mctsui_sql::NodeKind::Project);
        assert_eq!(lifted.children().len(), 1);
        assert_eq!(lifted.children()[0].kind(), DiffKind::Any);
        // Still expresses both projections.
        assert!(express(&lifted, &q1.children()[0]).is_some());
        assert!(express(&lifted, &q2.children()[0]).is_some());
    }

    #[test]
    fn optional_factors_empty_alternative() {
        let where_clause = DiffNode::from_ast(&q("select x from t where a = 1").children()[2]);
        let any = DiffNode::any(vec![where_clause.clone(), DiffNode::empty()]);
        let opt = Optional.rewrite(&any, None).unwrap();
        assert_eq!(opt.kind(), DiffKind::Opt);
        assert_eq!(opt.children()[0], where_clause);

        // And the inverse brings the empty alternative back.
        let back = OptionalInverse.rewrite(&opt, None).unwrap();
        assert_eq!(back.kind(), DiffKind::Any);
        assert!(back.children().iter().any(DiffNode::is_empty_alt));
    }

    #[test]
    fn optional_with_multiple_non_empty_keeps_any() {
        let a = DiffNode::from_ast(&q("select x from t").children()[0]);
        let b = DiffNode::from_ast(&q("select y from t").children()[0]);
        let any = DiffNode::any(vec![a, DiffNode::empty(), b]);
        let opt = Optional.rewrite(&any, None).unwrap();
        assert_eq!(opt.kind(), DiffKind::Opt);
        assert_eq!(opt.children()[0].kind(), DiffKind::Any);
        assert_eq!(opt.children()[0].children().len(), 2);
    }

    #[test]
    fn noop_collapses_singleton_any() {
        let child = DiffNode::from_ast(&q("select x from t"));
        let any = DiffNode::any(vec![child.clone()]);
        assert_eq!(Noop.rewrite(&any, None).unwrap(), child);
        assert!(Noop.rewrite(&child, None).is_none());
    }

    #[test]
    fn dedup_any_removes_duplicates() {
        let a = DiffNode::from_ast(&q("select x from t"));
        let b = DiffNode::from_ast(&q("select y from t"));
        let any = DiffNode::any(vec![a.clone(), b.clone(), a.clone()]);
        let deduped = DedupAny.rewrite(&any, None).unwrap();
        assert_eq!(deduped.children().len(), 2);
        assert!(DedupAny.rewrite(&deduped, None).is_none());
    }

    #[test]
    fn flatten_any_splices_nested_any() {
        let a = DiffNode::from_ast(&q("select x from t"));
        let b = DiffNode::from_ast(&q("select y from t"));
        let c = DiffNode::from_ast(&q("select z from t"));
        let nested = DiffNode::any(vec![DiffNode::any(vec![a.clone(), b.clone()]), c.clone()]);
        let flat = FlattenAny.rewrite(&nested, None).unwrap();
        assert_eq!(flat.children().len(), 3);
        assert!(flat.children().iter().all(|n| n.kind() == DiffKind::All));
    }

    #[test]
    fn multi_rule_collapses_adjacent_identical_siblings() {
        let query = q("select x from a, a, a");
        let from = DiffNode::from_ast(&query.children()[1]);
        let runs = MultiRule::runs(&from);
        assert_eq!(runs, vec![0]);
        let rewritten = MultiRule.rewrite(&from, Some(0)).unwrap();
        assert_eq!(rewritten.children().len(), 1);
        assert_eq!(rewritten.children()[0].kind(), DiffKind::Multi);
        // The MULTI must still express one, two or three repetitions of the table.
        assert!(express(&rewritten, &query.children()[1]).is_some());
        assert!(express(&rewritten, &q("select x from a").children()[1]).is_some());
    }

    #[test]
    fn multi_merge_collapses_alternatives_with_different_counts() {
        let one = q("select x from a");
        let three = q("select x from a, a, a");
        let any = DiffNode::any(vec![
            DiffNode::from_ast(&one.children()[1]),
            DiffNode::from_ast(&three.children()[1]),
        ]);
        assert!(MultiMerge::repeated_subtree(&any).is_some());
        let merged = MultiMerge.rewrite(&any, None).unwrap();
        assert_eq!(merged.kind(), DiffKind::All);
        assert_eq!(merged.children()[0].kind(), DiffKind::Multi);
        assert!(express(&merged, &one.children()[1]).is_some());
        assert!(express(&merged, &three.children()[1]).is_some());
    }

    #[test]
    fn multi_merge_requires_distinct_counts() {
        let one = q("select x from a");
        let any = DiffNode::any(vec![
            DiffNode::from_ast(&one.children()[1]),
            DiffNode::from_ast(&one.children()[1]),
        ]);
        assert!(MultiMerge::repeated_subtree(&any).is_none());
    }

    #[test]
    fn any2all_inverse_distributes_choice_back_out() {
        let queries = figure1_queries();
        let tree = initial(&queries);
        let engine = RuleEngine::default();
        let any2all = engine
            .applicable(&tree)
            .into_iter()
            .find(|a| a.rule == RuleId::Any2All)
            .unwrap();
        let factored = engine.apply(&tree, &any2all).unwrap();

        let inverse_apps: Vec<_> = engine
            .applicable(&factored)
            .into_iter()
            .filter(|a| a.rule == RuleId::Any2AllInverse)
            .collect();
        assert!(!inverse_apps.is_empty());
        let expanded = engine.apply(&factored, &inverse_apps[0]).unwrap();
        assert_eq!(
            expanded.node_at(&inverse_apps[0].path).unwrap().kind(),
            DiffKind::Any
        );
        assert!(expresses_all(expanded.root(), &queries));
    }

    #[test]
    fn every_applicable_rule_preserves_expressibility_on_figure1() {
        let queries = figure1_queries();
        let engine = RuleEngine::default();
        // Breadth-first exploration a couple of levels deep; every reachable state must keep
        // expressing all three input queries.
        let mut frontier = vec![initial(&queries)];
        for _depth in 0..2 {
            let mut next = Vec::new();
            for state in &frontier {
                for app in engine.applicable(state) {
                    let succ = engine
                        .apply(state, &app)
                        .unwrap_or_else(|| panic!("rule {app:?} failed to apply"));
                    assert!(
                        expresses_all(succ.root(), &queries),
                        "rule {:?} at {} broke expressibility:\n{}",
                        app.rule,
                        app.path,
                        succ.root().sexpr()
                    );
                    next.push(succ);
                }
            }
            // Keep the frontier small to bound the test's cost.
            next.truncate(25);
            frontier = next;
        }
    }

    #[test]
    fn fanout_is_reported_by_applicable() {
        let queries = figure1_queries();
        let tree = initial(&queries);
        let engine = RuleEngine::default();
        let fanout = engine.applicable(&tree).len();
        assert!(fanout >= 1);
        // The initial tree of three plain queries admits at least Any2All (or Lift).
        assert!(engine
            .applicable(&tree)
            .iter()
            .any(|a| matches!(a.rule, RuleId::Any2All | RuleId::Lift)));
    }

    #[test]
    fn apply_with_stale_path_returns_none() {
        let queries = figure1_queries();
        let tree = initial(&queries);
        let engine = RuleEngine::default();
        let bogus = RuleApplication::new(RuleId::Noop, DiffPath(vec![9, 9]));
        assert!(engine.apply(&tree, &bogus).is_none());
        let mismatched = RuleApplication::new(RuleId::Optional, DiffPath::root());
        assert!(engine.apply(&tree, &mismatched).is_none());
    }

    #[test]
    fn forward_engine_has_no_inverse_rules() {
        let engine = RuleEngine::forward_only();
        assert!(!engine.rules().contains(&RuleId::Any2AllInverse));
        assert!(!engine.rules().contains(&RuleId::OptionalInverse));
    }

    #[test]
    fn align_columns_handles_missing_children() {
        // Alternative 0: [Project, From, Where]; alternative 1: [Project, From].
        let q1 = q("select x from t where a = 1");
        let q2 = q("select x from t");
        let a1 = DiffNode::from_ast(&q1);
        let a2 = DiffNode::from_ast(&q2);
        let cols = align_alternative_children(&[&a1, &a2]);
        assert_eq!(cols.len(), 3);
        assert!(cols[0][0].is_some() && cols[0][1].is_some());
        assert!(cols[2][0].is_some() && cols[2][1].is_none());
    }

    #[test]
    fn rule_display_names() {
        for rule in RuleId::ALL {
            assert!(!rule.name().is_empty());
            assert_eq!(format!("{rule}"), rule.name());
        }
    }
}
