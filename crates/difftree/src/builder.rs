//! Construction of the initial search state from a query log.
//!
//! The paper's initial state is "the list of input queries connected with an ANY node as the
//! root". [`initial_difftree`] builds exactly that; [`simplified_difftree`] additionally
//! removes duplicate alternatives (repeated queries in a log carry no extra structural
//! information) — a cheap, semantics-preserving normalisation that keeps the search state
//! small for logs with many repeated queries.

use mctsui_sql::Ast;

use crate::node::{DiffNode, DiffTree};
use crate::rules::{RuleEngine, RuleId};

/// Build the paper's initial difftree: an `ANY` whose alternatives are the input query ASTs.
///
/// A single query produces its plain AST-as-difftree (no root `ANY`), mirroring the fact that
/// there is nothing to choose between.
pub fn initial_difftree(queries: &[Ast]) -> DiffTree {
    match queries {
        [] => DiffTree::new(DiffNode::empty()),
        [single] => DiffTree::new(DiffNode::from_ast(single)),
        many => DiffTree::new(DiffNode::any(many.iter().map(DiffNode::from_ast).collect())),
    }
}

/// Build the initial difftree and normalise it by deduplicating identical alternatives and
/// collapsing a then-singleton `ANY`.
pub fn simplified_difftree(queries: &[Ast]) -> DiffTree {
    let mut tree = initial_difftree(queries);
    let engine = RuleEngine::new(vec![RuleId::DedupAny, RuleId::Noop]);
    // Repeatedly apply the normalisation rules until a fixed point (at most a handful of
    // steps: one dedup plus one collapse).
    loop {
        let apps = engine.applicable(&tree);
        let Some(app) = apps.first() else { break };
        match engine.apply(&tree, app) {
            Some(next) => tree = next,
            None => break,
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::expresses_all;
    use crate::node::DiffKind;
    use mctsui_sql::parse_query;

    fn q(sql: &str) -> Ast {
        parse_query(sql).unwrap()
    }

    #[test]
    fn initial_tree_is_any_over_queries() {
        let queries = vec![
            q("select x from t"),
            q("select y from t"),
            q("select x from t where a = 1"),
        ];
        let tree = initial_difftree(&queries);
        assert_eq!(tree.root().kind(), DiffKind::Any);
        assert_eq!(tree.root().children().len(), 3);
        assert!(expresses_all(tree.root(), &queries));
    }

    #[test]
    fn single_query_has_no_root_any() {
        let queries = vec![q("select x from t")];
        let tree = initial_difftree(&queries);
        assert_eq!(tree.root().kind(), DiffKind::All);
        assert!(expresses_all(tree.root(), &queries));
    }

    #[test]
    fn empty_log_gives_empty_tree() {
        let tree = initial_difftree(&[]);
        assert!(tree.root().is_empty_alt());
    }

    #[test]
    fn simplified_removes_duplicate_queries() {
        let queries = vec![
            q("select x from t"),
            q("select x from t"),
            q("select y from t"),
            q("select x from t"),
        ];
        let tree = simplified_difftree(&queries);
        assert_eq!(tree.root().kind(), DiffKind::Any);
        assert_eq!(tree.root().children().len(), 2);
        assert!(expresses_all(tree.root(), &queries));
    }

    #[test]
    fn simplified_collapses_to_single_alternative() {
        let queries = vec![q("select x from t"), q("select x from t")];
        let tree = simplified_difftree(&queries);
        // Dedup leaves one alternative; Noop then collapses the ANY entirely.
        assert_eq!(tree.root().kind(), DiffKind::All);
        assert!(expresses_all(tree.root(), &queries));
    }
}
