//! The incremental action index: fingerprint-memoized rule-binding summaries.
//!
//! [`RuleEngine::applicable`](crate::rules::RuleEngine::applicable) answers "which rule
//! applications does this tree admit?" — the fanout of a search state. The reference
//! implementation walks every node and matches every rule, which is wasteful inside MCTS
//! rollouts: each step edits the persistent tree at *one* path, so the bindings of every
//! subtree off that spine are exactly what they were one state ago.
//!
//! [`ActionIndex`] maintains the answer incrementally instead of recomputing it. Per
//! subtree it stores a [`BindingSummary`] — the rule bindings at the subtree root, handles
//! to the child summaries, and the aggregate binding count — memoized by the subtree's
//! structural fingerprint in a shared cache. Because rule matching is a pure function of a
//! node's own subtree (every rule of the paper's Figure 5 inspects only the node and its
//! children), a summary is reusable across *every* tree that shares the subtree:
//!
//! * the first `applicable` for a tree computes summaries bottom-up (one cache miss per
//!   distinct subtree),
//! * after `replace_at` only the edited spine misses; every off-spine subtree is served
//!   from the memo — the incremental-view-maintenance payoff of the persistent
//!   representation,
//! * revisiting a state (as MCTS selection does constantly) is a single root lookup.
//!
//! The aggregate counts additionally make the index a sampling structure: `count_applicable`
//! is O(1) after the root lookup, and `nth_applicable` descends the summary tree guided by
//! the per-child totals, materialising a single [`RuleApplication`] in O(depth × branching)
//! without ever building the full fanout vector. Rollouts draw uniform random actions that
//! way.
//!
//! Summaries are position-independent: a binding is stored as `(rule, arg)` and its path is
//! reconstructed during traversal, so one summary serves a subtree wherever (and however
//! often) it occurs. Enumeration order is pinned to the reference scan — pre-order over
//! nodes, engine rule order within a node — so `applicable` and `nth_applicable` agree with
//! the scan element-for-element, which keeps seeded searches bit-identical across the two
//! paths.
//!
//! The cache follows the workspace's lock discipline: the mutex is only held for lookups
//! and inserts, never across a summary computation, so root-parallel search workers overlap
//! freely (a concurrently computed duplicate is discarded; the first insert wins). It is a
//! bounded [`GenerationCache`]: long-lived serving processes keep their live working set
//! warm via second-chance promotion while cold summaries age out, and hit/miss/eviction
//! counters are surfaced through [`ActionIndex::counters`].

use std::sync::Arc;

use rand::Rng;

use crate::cache::{CacheCounters, GenerationCache};
use crate::node::{DiffNode, DiffPath, DiffTree};
use crate::rules::{push_rule_bindings, RuleApplication, RuleId};

/// Default capacity (resident subtree summaries) of the binding cache.
pub const INDEX_DEFAULT_CAPACITY: usize = 1 << 17;

/// One rule binding at a subtree root: the rule plus its rule-specific argument. The target
/// path is implicit — it is the path of the subtree root, reconstructed during traversal —
/// which is what lets one summary serve a subtree at every position it occurs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LocalBinding {
    rule: RuleId,
    arg: Option<usize>,
}

/// The memoized binding summary of one subtree: local bindings at the root (in engine rule
/// order), shared handles to the child summaries (in child order), and the total number of
/// bindings in the subtree.
#[derive(Debug)]
pub struct BindingSummary {
    local: Vec<LocalBinding>,
    children: Vec<Arc<BindingSummary>>,
    total: usize,
}

impl BindingSummary {
    /// Total number of rule bindings in the summarised subtree.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of bindings at the subtree root itself.
    pub fn local_count(&self) -> usize {
        self.local.len()
    }
}

/// A shared, fingerprint-keyed cache of [`BindingSummary`]s for one rule-engine
/// configuration (rule set + `Any2AllInverse` cap).
///
/// The engine configuration is captured at construction: summaries computed under one
/// configuration are never valid under another, so each [`RuleEngine`] owns (and its clones
/// share) exactly one index.
///
/// [`RuleEngine`]: crate::rules::RuleEngine
pub struct ActionIndex {
    rules: Vec<RuleId>,
    max_inverse_alternatives: usize,
    cache: GenerationCache<Arc<BindingSummary>>,
}

impl ActionIndex {
    /// Build an empty index for an engine configuration with the default cache capacity.
    pub fn new(rules: Vec<RuleId>, max_inverse_alternatives: usize) -> Self {
        Self::with_capacity(rules, max_inverse_alternatives, INDEX_DEFAULT_CAPACITY)
    }

    /// [`ActionIndex::new`] with an explicit bound on resident subtree summaries.
    pub fn with_capacity(
        rules: Vec<RuleId>,
        max_inverse_alternatives: usize,
        capacity: usize,
    ) -> Self {
        Self {
            rules,
            max_inverse_alternatives,
            cache: GenerationCache::new(capacity),
        }
    }

    /// The binding summary of a subtree, computed bottom-up on the first request and served
    /// from the fingerprint memo afterwards.
    ///
    /// The lock is never held across a computation: the cache is probed, released, the
    /// children recursed and the local bindings matched outside the lock, and the result
    /// inserted under a fresh lock (first insert wins under concurrency).
    pub fn summary(&self, node: &DiffNode) -> Arc<BindingSummary> {
        let key = node.fingerprint();
        if let Some(hit) = self.cache.get(key) {
            return hit;
        }

        let children: Vec<Arc<BindingSummary>> =
            node.children().iter().map(|c| self.summary(c)).collect();
        let mut apps = Vec::new();
        for rule in &self.rules {
            push_rule_bindings(
                *rule,
                node,
                &DiffPath::root(),
                self.max_inverse_alternatives,
                &mut apps,
            );
        }
        let local: Vec<LocalBinding> = apps
            .into_iter()
            .map(|a| LocalBinding {
                rule: a.rule,
                arg: a.arg,
            })
            .collect();
        let total = local.len() + children.iter().map(|c| c.total).sum::<usize>();
        let summary = Arc::new(BindingSummary {
            local,
            children,
            total,
        });

        self.cache.insert(key, summary)
    }

    /// Every applicable rule application of the tree, in reference-scan order (pre-order
    /// over nodes, engine rule order within a node).
    ///
    /// After the first call for a state this is a root lookup plus an output-sized
    /// materialisation: subtrees without bindings are skipped via their cached totals.
    pub fn applicable(&self, tree: &DiffTree) -> Vec<RuleApplication> {
        let summary = self.summary(tree.root());
        let mut out = Vec::with_capacity(summary.total);
        let mut prefix = Vec::new();
        collect_applications(&summary, &mut prefix, &mut out);
        out
    }

    /// The fanout of the tree without materialising any application. O(1) after the root
    /// summary is cached.
    pub fn count_applicable(&self, tree: &DiffTree) -> usize {
        self.summary(tree.root()).total
    }

    /// The `n`-th applicable application (0-based, reference-scan order), materialised alone
    /// in O(depth × branching) by descending the cached per-subtree totals.
    pub fn nth_applicable(&self, tree: &DiffTree, n: usize) -> Option<RuleApplication> {
        nth_in_summary(self.summary(tree.root()), n)
    }

    /// The first applicable application in reference-scan order, or `None` for a dead-end
    /// state. O(depth): the short-circuiting form of `applicable().first()`.
    pub fn first_applicable(&self, tree: &DiffTree) -> Option<RuleApplication> {
        self.nth_applicable(tree, 0)
    }

    /// Draw one applicable application uniformly at random (exactly the distribution of
    /// indexing a materialised `applicable` vector with a uniform index), or `None` for a
    /// dead-end state. Consumes one `gen_range` draw, like the vector form it replaces.
    pub fn sample_applicable<R: Rng>(
        &self,
        tree: &DiffTree,
        rng: &mut R,
    ) -> Option<RuleApplication> {
        // One root lookup serves both the count and the descent.
        let summary = self.summary(tree.root());
        if summary.total == 0 {
            return None;
        }
        let n = rng.gen_range(0..summary.total);
        nth_in_summary(summary, n)
    }

    /// Number of distinct subtree summaries currently memoized (for diagnostics).
    pub fn cached_summaries(&self) -> usize {
        self.cache.len()
    }

    /// Hit/miss/eviction counters of the binding cache (for serving stats).
    pub fn counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Per-shard counters of the binding cache (for serving stats; one entry per shard of
    /// the underlying [`GenerationCache`]).
    pub fn shard_counters(&self) -> Vec<CacheCounters> {
        self.cache.shard_counters()
    }
}

/// Select the `n`-th application of an already-resolved summary by descending the cached
/// per-subtree totals, reconstructing the target path along the way.
fn nth_in_summary(mut summary: Arc<BindingSummary>, mut n: usize) -> Option<RuleApplication> {
    if n >= summary.total {
        return None;
    }
    let mut prefix = Vec::new();
    loop {
        if let Some(binding) = summary.local.get(n) {
            return Some(RuleApplication {
                rule: binding.rule,
                path: DiffPath(prefix),
                arg: binding.arg,
            });
        }
        n -= summary.local.len();
        let mut descend = None;
        for (i, child) in summary.children.iter().enumerate() {
            if n < child.total {
                descend = Some((i, Arc::clone(child)));
                break;
            }
            n -= child.total;
        }
        // `n < summary.total` is a loop invariant, so one child always absorbs `n`.
        let (idx, child) = descend?;
        prefix.push(idx);
        summary = child;
    }
}

/// Append every application of `summary`'s subtree to `out`, reconstructing paths from the
/// traversal prefix. Binding-free subtrees are pruned via their cached totals.
fn collect_applications(
    summary: &BindingSummary,
    prefix: &mut Vec<usize>,
    out: &mut Vec<RuleApplication>,
) {
    if summary.total == 0 {
        return;
    }
    for binding in &summary.local {
        out.push(RuleApplication {
            rule: binding.rule,
            path: DiffPath(prefix.clone()),
            arg: binding.arg,
        });
    }
    for (i, child) in summary.children.iter().enumerate() {
        if child.total == 0 {
            continue;
        }
        prefix.push(i);
        collect_applications(child, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::initial_difftree;
    use crate::rules::RuleEngine;
    use mctsui_sql::{parse_query, Ast};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn figure1_queries() -> Vec<Ast> {
        vec![
            parse_query("SELECT Sales FROM sales WHERE cty = 'USA'").unwrap(),
            parse_query("SELECT Costs FROM sales WHERE cty = 'EUR'").unwrap(),
            parse_query("SELECT Costs FROM sales").unwrap(),
        ]
    }

    #[test]
    fn index_matches_scan_across_a_rule_walk() {
        let engine = RuleEngine::default();
        let mut tree = initial_difftree(&figure1_queries());
        for step in 0..12 {
            let indexed = engine.applicable(&tree);
            let scanned = engine.applicable_scan(&tree);
            assert_eq!(indexed, scanned, "divergence at step {step}");
            assert_eq!(engine.count_applicable(&tree), scanned.len());
            if scanned.is_empty() {
                break;
            }
            let pick = (step * 7) % scanned.len();
            tree = engine.apply(&tree, &scanned[pick]).expect("applicable");
        }
    }

    #[test]
    fn nth_applicable_enumerates_the_scan_order() {
        let engine = RuleEngine::default();
        let tree = initial_difftree(&figure1_queries());
        let factored = engine.saturate_forward(&tree, 50);
        for state in [&tree, &factored] {
            let scanned = engine.applicable_scan(state);
            let drawn: Vec<RuleApplication> = (0..scanned.len())
                .map(|i| engine.nth_applicable(state, i).expect("in range"))
                .collect();
            assert_eq!(drawn, scanned);
            assert!(engine.nth_applicable(state, scanned.len()).is_none());
            assert_eq!(engine.first_applicable(state), scanned.first().cloned());
        }
    }

    #[test]
    fn sample_applicable_draws_members_deterministically() {
        let engine = RuleEngine::default();
        let tree = initial_difftree(&figure1_queries());
        let all = engine.applicable(&tree);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            let x = engine.sample_applicable(&tree, &mut a).expect("non-empty");
            let y = engine.sample_applicable(&tree, &mut b).expect("non-empty");
            assert_eq!(x, y, "same seed, same draw");
            assert!(all.contains(&x), "draw must be an applicable application");
        }
    }

    #[test]
    fn off_spine_summaries_are_shared_after_an_edit() {
        let engine = RuleEngine::default();
        let index = engine.action_index();
        let tree = initial_difftree(&figure1_queries());
        let _warm = engine.applicable(&tree);

        // Edit alternative 0; alternative 1's subtree summary must be the same Arc.
        let before = index.summary(&tree.root().children()[1]);
        let edited = tree
            .replace_at(&DiffPath(vec![0]), crate::node::DiffNode::empty())
            .expect("path exists");
        let _requery = engine.applicable(&edited);
        let after = index.summary(&edited.root().children()[1]);
        assert!(
            Arc::ptr_eq(&before, &after),
            "off-spine summary was recomputed instead of memo-served"
        );
    }

    #[test]
    fn bounded_index_stays_correct_under_eviction_pressure() {
        // A deliberately tiny cache: every query thrashes the memo, yet results must stay
        // identical to the reference scan (eviction may cost time, never correctness).
        let tiny = ActionIndex::with_capacity(RuleId::ALL.to_vec(), 12, 8);
        let engine = RuleEngine::default();
        let mut tree = initial_difftree(&figure1_queries());
        for step in 0..8 {
            let indexed = tiny.applicable(&tree);
            let scanned = engine.applicable_scan(&tree);
            assert_eq!(indexed, scanned, "divergence at step {step}");
            assert!(tiny.cached_summaries() <= 8, "capacity bound violated");
            if scanned.is_empty() {
                break;
            }
            tree = engine.apply(&tree, &scanned[step % scanned.len()]).unwrap();
        }
        let counters = tiny.counters();
        assert!(counters.evictions > 0, "tiny cache never evicted");
        assert!(counters.insertions > 0 && counters.misses > 0);
    }

    #[test]
    fn dead_end_states_report_empty() {
        let engine = RuleEngine::default();
        let concrete = DiffTree::new(crate::node::DiffNode::from_ast(
            &parse_query("SELECT x FROM t").unwrap(),
        ));
        assert_eq!(engine.count_applicable(&concrete), 0);
        assert!(engine.first_applicable(&concrete).is_none());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(engine.sample_applicable(&concrete, &mut rng).is_none());
        assert!(engine.applicable(&concrete).is_empty());
    }
}
