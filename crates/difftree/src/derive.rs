//! Derivation and expressibility: relating difftrees to concrete queries.
//!
//! A concrete query is *expressed* by a difftree through a [`ChoiceAssignment`]: the
//! selection made at every choice node (which alternative of an `Any`, whether an `Opt` is
//! included, how many repetitions of a `Multi` and the choices inside each). Deriving with an
//! assignment produces an AST; [`express`] searches for an assignment that derives a given
//! query. The interface's usability cost needs to know *which* widgets a user must touch to
//! go from one query to the next — [`changed_choice_paths`] computes exactly that set.

use std::sync::Arc;

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use mctsui_sql::{Ast, SyntaxError};

use crate::node::{DiffKind, DiffNode, DiffPath};

/// One slot of a query log that may have failed to parse.
///
/// A degraded log keeps its original shape — one slot per submitted query — so that
/// diagnostics, widget costs and serve-layer reports can refer to queries by their original
/// index. Unusable entries are quarantined as [`LogEntry::Opaque`] slots carrying the raw
/// source and the diagnostics that disqualified them; the difftree is built over the healthy
/// entries only.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEntry {
    /// A healthy, fully parsed query that participates in the difftree.
    Parsed(Ast),
    /// A quarantined entry excluded from the difftree.
    Opaque {
        /// The raw query text as submitted.
        source: String,
        /// The diagnostics that disqualified it (never empty).
        errors: Vec<SyntaxError>,
    },
}

impl LogEntry {
    /// The parsed AST, if this entry is healthy.
    pub fn ast(&self) -> Option<&Ast> {
        match self {
            LogEntry::Parsed(ast) => Some(ast),
            LogEntry::Opaque { .. } => None,
        }
    }

    /// True for quarantined entries.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, LogEntry::Opaque { .. })
    }
}

/// The healthy ASTs of a partially parsed log, in original order.
pub fn healthy_queries(entries: &[LogEntry]) -> Vec<Ast> {
    entries.iter().filter_map(|e| e.ast().cloned()).collect()
}

/// Express every entry of a partially parsed log against `node`.
///
/// The result has one slot per entry: quarantined entries yield `None` without being
/// matched, healthy entries yield their assignment (or `None` when inexpressible), exactly
/// mirroring [`express_log`] over the healthy subsequence.
pub fn express_entries(node: &DiffNode, entries: &[LogEntry]) -> Vec<Option<ChoiceAssignment>> {
    let mut memo = ExpressMemo::default();
    entries
        .iter()
        .map(|entry| {
            entry
                .ast()
                .and_then(|q| express_with_memo(node, q, &mut memo))
        })
        .collect()
}

/// The selections made at the choice nodes of a difftree, mirrored onto its structure.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChoiceAssignment {
    /// An `All` node: one assignment per child, in order.
    All(Vec<ChoiceAssignment>),
    /// An `Any` node: the index of the chosen alternative and the assignment inside it.
    Any {
        /// Index of the chosen alternative.
        pick: usize,
        /// Assignment for the chosen alternative's subtree.
        inner: Box<ChoiceAssignment>,
    },
    /// An `Opt` node: `None` when the child is omitted.
    Opt {
        /// Assignment for the child when it is included.
        included: Option<Box<ChoiceAssignment>>,
    },
    /// A `Multi` node: one assignment per repetition (possibly empty).
    Multi {
        /// Assignments for each repetition of the child, in order.
        reps: Vec<ChoiceAssignment>,
    },
}

impl ChoiceAssignment {
    /// A trivial assignment for a concrete (choice-free) subtree.
    pub fn concrete(node: &DiffNode) -> ChoiceAssignment {
        ChoiceAssignment::All(
            node.children()
                .iter()
                .map(ChoiceAssignment::concrete)
                .collect(),
        )
    }

    /// Number of choice decisions recorded in this assignment.
    pub fn decision_count(&self) -> usize {
        match self {
            ChoiceAssignment::All(children) => {
                children.iter().map(ChoiceAssignment::decision_count).sum()
            }
            ChoiceAssignment::Any { inner, .. } => 1 + inner.decision_count(),
            ChoiceAssignment::Opt { included } => {
                1 + included.as_ref().map_or(0, |i| i.decision_count())
            }
            ChoiceAssignment::Multi { reps } => {
                1 + reps
                    .iter()
                    .map(ChoiceAssignment::decision_count)
                    .sum::<usize>()
            }
        }
    }
}

/// Derive the AST sequence produced by `node` under `assignment`.
///
/// Returns `None` when the assignment does not structurally match the node (e.g. an `Any`
/// pick that is out of range).
pub fn derive(node: &DiffNode, assignment: &ChoiceAssignment) -> Option<Vec<Ast>> {
    match (node.kind(), assignment) {
        (DiffKind::All, ChoiceAssignment::All(child_assignments)) => {
            let label = node.label()?;
            if child_assignments.len() != node.children().len() {
                return None;
            }
            if label.is_empty() {
                return Some(Vec::new());
            }
            let mut children = Vec::new();
            for (child, ca) in node.children().iter().zip(child_assignments) {
                children.extend(derive(child, ca)?);
            }
            let ast = match &label.value {
                Some(v) => Ast::with_value(label.kind, v.clone(), children),
                None => Ast::new(label.kind, children),
            };
            Some(vec![ast])
        }
        (DiffKind::Any, ChoiceAssignment::Any { pick, inner }) => {
            let child = node.children().get(*pick)?;
            derive(child, inner)
        }
        (DiffKind::Opt, ChoiceAssignment::Opt { included }) => match included {
            None => Some(Vec::new()),
            Some(inner) => derive(node.children().first()?, inner),
        },
        (DiffKind::Multi, ChoiceAssignment::Multi { reps }) => {
            let child = node.children().first()?;
            let mut out = Vec::new();
            for rep in reps {
                out.extend(derive(child, rep)?);
            }
            Some(out)
        }
        _ => None,
    }
}

/// Derive a single query AST from a root difftree node (the common case where the root
/// derives exactly one `Select` node).
pub fn derive_query(node: &DiffNode, assignment: &ChoiceAssignment) -> Option<Ast> {
    let seq = derive(node, assignment)?;
    if seq.len() == 1 {
        seq.into_iter().next()
    } else {
        None
    }
}

/// Memo table for expressibility matching.
///
/// Matching a difftree node against a span of target AST nodes is a pure function of the
/// node's *structure* and the span's *contents*. Entries are keyed by the node's cached
/// fingerprint plus the span's address and length, which makes the table reusable across
/// search states: persistent trees share unedited subtrees, so after one `replace_at` every
/// match result outside the edited spine is a cache hit. This is the incremental-maintenance
/// payoff of the structurally shared representation.
///
/// The address-based key is only valid while the target ASTs stay alive and unmoved, which
/// is why this type is crate-private: the safe ways to reuse a memo are [`Expressor`]
/// (which owns and thereby pins its query log) and the call-scoped memos of [`express`],
/// [`express_log`] and [`expresses_all`], which never outlive the target borrow.
#[derive(Default)]
pub(crate) struct ExpressMemo {
    map: FxHashMap<MemoKey, Arc<MatchResults>>,
}

/// Memo key: (node fingerprint, target-span address, target-span length).
type MemoKey = (u64, usize, usize);

/// All the ways one node matches one span: (consumed targets, assignment) pairs.
type MatchResults = Vec<(usize, ChoiceAssignment)>;

impl ExpressMemo {
    /// Number of memoized (node, span) entries.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Drop all entries.
    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }
}

/// A reusable expressibility engine bound to one query log.
///
/// Owning the log (`Arc<[Ast]>`) pins the target ASTs in memory, which makes the
/// address-keyed [`ExpressMemo`] sound for the whole lifetime of the `Expressor`. The cost
/// layer keeps one of these per search problem so that expressing the log in state
/// `T.replace_at(p, n)` reuses every match computed for the shared subtrees of `T`.
pub struct Expressor {
    queries: Arc<[Ast]>,
    memo: ExpressMemo,
}

impl Expressor {
    /// Build an engine for a query log.
    pub fn new(queries: Arc<[Ast]>) -> Self {
        Self {
            queries,
            memo: ExpressMemo::default(),
        }
    }

    /// The query log this engine expresses.
    pub fn queries(&self) -> &[Ast] {
        &self.queries
    }

    /// Express the `index`-th query of the log in `node`, reusing memoized match results.
    pub fn express(&mut self, node: &DiffNode, index: usize) -> Option<ChoiceAssignment> {
        let Self { queries, memo } = self;
        express_with_memo(node, &queries[index], memo)
    }

    /// Number of memoized entries (exposed for cache-pressure accounting).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Clear the memo once it exceeds `max_entries` (a simple pressure valve for very long
    /// search runs; the memo refills from the live working set).
    pub fn trim(&mut self, max_entries: usize) {
        if self.memo.len() > max_entries {
            self.memo.clear();
        }
    }
}

/// Find a [`ChoiceAssignment`] under which `node` derives exactly the single AST `query`.
///
/// Returns `None` when the difftree cannot express the query. Uses a throwaway memo; inside
/// evaluation loops prefer [`Expressor`], whose memo persists across states.
pub fn express(node: &DiffNode, query: &Ast) -> Option<ChoiceAssignment> {
    express_with_memo(node, query, &mut ExpressMemo::default())
}

/// Express every query of a log against `node`, sharing one call-scoped memo across the
/// queries (safe: the memo cannot outlive the borrow of `queries`).
pub fn express_log(node: &DiffNode, queries: &[Ast]) -> Vec<Option<ChoiceAssignment>> {
    let mut memo = ExpressMemo::default();
    queries
        .iter()
        .map(|q| express_with_memo(node, q, &mut memo))
        .collect()
}

/// [`express`] against a caller-provided memo.
///
/// Crate-private: the memo may only be reused across calls while every previously matched
/// target AST is still alive and unmoved (see [`ExpressMemo`]); [`Expressor`] packages that
/// guarantee for external callers.
fn express_with_memo(
    node: &DiffNode,
    query: &Ast,
    memo: &mut ExpressMemo,
) -> Option<ChoiceAssignment> {
    let targets = std::slice::from_ref(query);
    for (consumed, assignment) in match_node(node, targets, memo).iter() {
        if *consumed == targets.len() {
            return Some(assignment.clone());
        }
    }
    None
}

/// True if `node` expresses every query in `queries`.
pub fn expresses_all(node: &DiffNode, queries: &[Ast]) -> bool {
    let mut memo = ExpressMemo::default();
    queries
        .iter()
        .all(|q| express_with_memo(node, q, &mut memo).is_some())
}

/// Memoized entry point of the matcher.
fn match_node(node: &DiffNode, targets: &[Ast], memo: &mut ExpressMemo) -> Arc<MatchResults> {
    let key = (node.fingerprint(), targets.as_ptr() as usize, targets.len());
    if let Some(hit) = memo.map.get(&key) {
        return Arc::clone(hit);
    }
    let computed = Arc::new(match_node_uncached(node, targets, memo));
    memo.map.insert(key, Arc::clone(&computed));
    computed
}

/// All the ways `node` can derive a prefix of `targets`: pairs of (number of target nodes
/// consumed, assignment). The list is small in practice; `Any` nodes contribute one entry per
/// viable alternative.
fn match_node_uncached(node: &DiffNode, targets: &[Ast], memo: &mut ExpressMemo) -> MatchResults {
    match node.kind() {
        DiffKind::All => {
            let Some(label) = node.label() else {
                return Vec::new();
            };
            if label.is_empty() {
                return vec![(0, ChoiceAssignment::All(Vec::new()))];
            }
            let Some(first) = targets.first() else {
                return Vec::new();
            };
            if first.kind() != label.kind || first.value() != label.value.as_ref() {
                return Vec::new();
            }
            match match_children(node.children(), first.children(), memo) {
                Some(child_assignments) => vec![(1, ChoiceAssignment::All(child_assignments))],
                None => Vec::new(),
            }
        }
        DiffKind::Any => {
            let mut out = Vec::new();
            for (i, child) in node.children().iter().enumerate() {
                for (consumed, inner) in match_node(child, targets, memo).iter() {
                    out.push((
                        *consumed,
                        ChoiceAssignment::Any {
                            pick: i,
                            inner: Box::new(inner.clone()),
                        },
                    ));
                }
            }
            out
        }
        DiffKind::Opt => {
            let mut out = vec![(0, ChoiceAssignment::Opt { included: None })];
            if let Some(child) = node.children().first() {
                for (consumed, inner) in match_node(child, targets, memo).iter() {
                    if *consumed > 0 {
                        out.push((
                            *consumed,
                            ChoiceAssignment::Opt {
                                included: Some(Box::new(inner.clone())),
                            },
                        ));
                    }
                }
            }
            out
        }
        DiffKind::Multi => {
            // Zero or more repetitions; each repetition must consume at least one target node
            // to guarantee termination.
            let mut out = vec![(0, ChoiceAssignment::Multi { reps: Vec::new() })];
            let Some(child) = node.children().first() else {
                return out;
            };
            let mut frontier: Vec<(usize, Vec<ChoiceAssignment>)> = vec![(0, Vec::new())];
            while let Some((consumed_so_far, reps)) = frontier.pop() {
                for (consumed, rep) in match_node(child, &targets[consumed_so_far..], memo).iter() {
                    if *consumed == 0 {
                        continue;
                    }
                    let total = consumed_so_far + consumed;
                    let mut new_reps = reps.clone();
                    new_reps.push(rep.clone());
                    out.push((
                        total,
                        ChoiceAssignment::Multi {
                            reps: new_reps.clone(),
                        },
                    ));
                    if total < targets.len() {
                        frontier.push((total, new_reps));
                    }
                }
            }
            out
        }
    }
}

/// Match a list of difftree children against a full AST child list (all targets must be
/// consumed). Backtracks over the possible consumption splits.
fn match_children(
    children: &[DiffNode],
    targets: &[Ast],
    memo: &mut ExpressMemo,
) -> Option<Vec<ChoiceAssignment>> {
    fn rec(
        children: &[DiffNode],
        targets: &[Ast],
        acc: &mut Vec<ChoiceAssignment>,
        memo: &mut ExpressMemo,
    ) -> bool {
        match children.split_first() {
            None => targets.is_empty(),
            Some((head, rest)) => {
                for (consumed, assignment) in match_node(head, targets, memo).iter() {
                    acc.push(assignment.clone());
                    if rec(rest, &targets[*consumed..], acc, memo) {
                        return true;
                    }
                    acc.pop();
                }
                false
            }
        }
    }
    let mut acc = Vec::with_capacity(children.len());
    rec(children, targets, &mut acc, memo).then_some(acc)
}

/// The set of choice-node paths whose selections differ between two assignments over the same
/// difftree. This is exactly the set of widgets a user must touch to move from the query
/// expressed by `a` to the query expressed by `b` (the `U(q_i, q_{i+1}, W)` term of the
/// paper's cost function).
pub fn changed_choice_paths(
    node: &DiffNode,
    a: &ChoiceAssignment,
    b: &ChoiceAssignment,
) -> Vec<DiffPath> {
    let mut out = Vec::new();
    walk_changes(node, a, b, DiffPath::root(), &mut out);
    out.sort();
    out.dedup();
    out
}

fn walk_changes(
    node: &DiffNode,
    a: &ChoiceAssignment,
    b: &ChoiceAssignment,
    path: DiffPath,
    out: &mut Vec<DiffPath>,
) {
    match (node.kind(), a, b) {
        (DiffKind::All, ChoiceAssignment::All(ca), ChoiceAssignment::All(cb)) => {
            for (i, child) in node.children().iter().enumerate() {
                if let (Some(x), Some(y)) = (ca.get(i), cb.get(i)) {
                    walk_changes(child, x, y, path.child(i), out);
                }
            }
        }
        (
            DiffKind::Any,
            ChoiceAssignment::Any {
                pick: pa,
                inner: ia,
            },
            ChoiceAssignment::Any {
                pick: pb,
                inner: ib,
            },
        ) => {
            if pa != pb {
                out.push(path);
            } else if let Some(child) = node.children().get(*pa) {
                walk_changes(child, ia, ib, path.child(*pa), out);
            }
        }
        (
            DiffKind::Opt,
            ChoiceAssignment::Opt { included: ia },
            ChoiceAssignment::Opt { included: ib },
        ) => match (ia, ib) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                if let Some(child) = node.children().first() {
                    walk_changes(child, x, y, path.child(0), out);
                }
            }
            _ => out.push(path),
        },
        (
            DiffKind::Multi,
            ChoiceAssignment::Multi { reps: ra },
            ChoiceAssignment::Multi { reps: rb },
        ) => {
            if ra.len() != rb.len() {
                out.push(path.clone());
            }
            if let Some(child) = node.children().first() {
                for (x, y) in ra.iter().zip(rb.iter()) {
                    walk_changes(child, x, y, path.child(0), out);
                }
            }
        }
        // Structurally mismatched assignments: attribute the difference to this node.
        _ => out.push(path),
    }
}

/// Estimate of the number of distinct queries the difftree can express, saturating at
/// `u64::MAX`. `Multi` nodes are counted with repetition counts 0..=`multi_cap`.
pub fn language_size(node: &DiffNode, multi_cap: u32) -> u64 {
    match node.kind() {
        DiffKind::All => node
            .children()
            .iter()
            .map(|c| language_size(c, multi_cap))
            .fold(1u64, u64::saturating_mul),
        DiffKind::Any => node
            .children()
            .iter()
            .map(|c| language_size(c, multi_cap))
            .fold(0u64, u64::saturating_add)
            .max(1),
        DiffKind::Opt => 1u64.saturating_add(
            node.children()
                .first()
                .map_or(0, |c| language_size(c, multi_cap)),
        ),
        DiffKind::Multi => {
            let child = node
                .children()
                .first()
                .map_or(1, |c| language_size(c, multi_cap));
            // 1 (zero reps) + child + child^2 + ... + child^cap
            let mut total = 1u64;
            let mut power = 1u64;
            for _ in 0..multi_cap {
                power = power.saturating_mul(child);
                total = total.saturating_add(power);
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Label;
    use mctsui_sql::parse_query;

    fn q(sql: &str) -> Ast {
        parse_query(sql).unwrap()
    }

    fn figure1_queries() -> Vec<Ast> {
        vec![
            q("SELECT Sales FROM sales WHERE cty = 'USA'"),
            q("SELECT Costs FROM sales WHERE cty = 'EUR'"),
            q("SELECT Costs FROM sales"),
        ]
    }

    #[test]
    fn concrete_tree_expresses_only_its_query() {
        let queries = figure1_queries();
        let node = DiffNode::from_ast(&queries[0]);
        assert!(express(&node, &queries[0]).is_some());
        assert!(express(&node, &queries[1]).is_none());

        let assignment = express(&node, &queries[0]).unwrap();
        assert_eq!(assignment.decision_count(), 0);
        assert_eq!(derive_query(&node, &assignment).unwrap(), queries[0]);
    }

    #[test]
    fn initial_any_expresses_every_input_query() {
        let queries = figure1_queries();
        let root = DiffNode::any(queries.iter().map(DiffNode::from_ast).collect());
        assert!(expresses_all(&root, &queries));
        for (i, query) in queries.iter().enumerate() {
            let a = express(&root, query).unwrap();
            match &a {
                ChoiceAssignment::Any { pick, .. } => assert_eq!(*pick, i),
                other => panic!("expected Any assignment, got {other:?}"),
            }
            assert_eq!(derive_query(&root, &a).unwrap(), *query);
        }
    }

    #[test]
    fn opt_expresses_presence_and_absence() {
        // OPT(Where ...) inside a Select: models q2 vs q3 of Figure 1.
        let q2 = q("SELECT Costs FROM sales WHERE cty = 'EUR'");
        let q3 = q("SELECT Costs FROM sales");
        let where_sub = DiffNode::from_ast(&q2.children()[2]);
        let select = DiffNode::all(
            Label::of_ast(&q2),
            vec![
                DiffNode::from_ast(&q2.children()[0]),
                DiffNode::from_ast(&q2.children()[1]),
                DiffNode::opt(where_sub),
            ],
        );
        assert!(express(&select, &q2).is_some());
        assert!(express(&select, &q3).is_some());
        assert!(express(&select, &q("SELECT Sales FROM sales")).is_none());
    }

    #[test]
    fn multi_expresses_repeated_predicates() {
        // A From clause with a MULTI(Table) child expresses any number of tables.
        let one = q("select x from a");
        let two = q("select x from a, a");
        let three = q("select x from a, a, a");
        let table = DiffNode::from_ast(&one.children()[1].children()[0]);
        let from = DiffNode::all(
            Label::of_ast(&one.children()[1]),
            vec![DiffNode::multi(table)],
        );
        let select = DiffNode::all(
            Label::of_ast(&one),
            vec![DiffNode::from_ast(&one.children()[0]), from],
        );
        for query in [&one, &two, &three] {
            let a = express(&select, query).expect("multi should express repetition");
            assert_eq!(&derive_query(&select, &a).unwrap(), query);
        }
        // A different table is not expressible.
        assert!(express(&select, &q("select x from b")).is_none());
    }

    #[test]
    fn derive_rejects_mismatched_assignment() {
        let queries = figure1_queries();
        let root = DiffNode::any(queries.iter().map(DiffNode::from_ast).collect());
        let bogus = ChoiceAssignment::Any {
            pick: 99,
            inner: Box::new(ChoiceAssignment::All(Vec::new())),
        };
        assert!(derive(&root, &bogus).is_none());
        let wrong_shape = ChoiceAssignment::All(Vec::new());
        assert!(derive(&root, &wrong_shape).is_none());
    }

    #[test]
    fn changed_paths_between_queries() {
        let queries = figure1_queries();
        let root = DiffNode::any(queries.iter().map(DiffNode::from_ast).collect());
        let a0 = express(&root, &queries[0]).unwrap();
        let a1 = express(&root, &queries[1]).unwrap();
        // Different alternatives of the root ANY: exactly one changed choice (the root).
        let changed = changed_choice_paths(&root, &a0, &a1);
        assert_eq!(changed, vec![DiffPath::root()]);
        // Same query twice: nothing changes.
        assert!(changed_choice_paths(&root, &a0, &a0).is_empty());
    }

    #[test]
    fn changed_paths_descend_into_nested_choices() {
        // Select with ANY over the projected column and OPT over WHERE.
        let q1 = q("SELECT Sales FROM sales WHERE cty = 'USA'");
        let q2 = q("SELECT Costs FROM sales WHERE cty = 'USA'");
        let q3 = q("SELECT Sales FROM sales");
        let col_any = DiffNode::any(vec![
            DiffNode::from_ast(&q1.children()[0].children()[0].children()[0]),
            DiffNode::from_ast(&q2.children()[0].children()[0].children()[0]),
        ]);
        let proj = DiffNode::all(
            Label::of_ast(&q1.children()[0]),
            vec![DiffNode::all(
                Label::of_ast(&q1.children()[0].children()[0]),
                vec![col_any],
            )],
        );
        let select = DiffNode::all(
            Label::of_ast(&q1),
            vec![
                proj,
                DiffNode::from_ast(&q1.children()[1]),
                DiffNode::opt(DiffNode::from_ast(&q1.children()[2])),
            ],
        );
        let a1 = express(&select, &q1).unwrap();
        let a2 = express(&select, &q2).unwrap();
        let a3 = express(&select, &q3).unwrap();
        // q1 -> q2 changes only the projection ANY.
        let c12 = changed_choice_paths(&select, &a1, &a2);
        assert_eq!(c12.len(), 1);
        assert_eq!(c12[0], DiffPath(vec![0, 0, 0]));
        // q1 -> q3 toggles only the OPT.
        let c13 = changed_choice_paths(&select, &a1, &a3);
        assert_eq!(c13, vec![DiffPath(vec![2])]);
        // q2 -> q3 changes both.
        let c23 = changed_choice_paths(&select, &a2, &a3);
        assert_eq!(c23.len(), 2);
    }

    #[test]
    fn language_size_counts() {
        let queries = figure1_queries();
        let root = DiffNode::any(queries.iter().map(DiffNode::from_ast).collect());
        assert_eq!(language_size(&root, 3), 3);

        let opt = DiffNode::opt(DiffNode::from_ast(&queries[0]));
        assert_eq!(language_size(&opt, 3), 2);

        let multi = DiffNode::multi(DiffNode::from_ast(&queries[0]));
        assert_eq!(language_size(&multi, 3), 4);

        let concrete = DiffNode::from_ast(&queries[0]);
        assert_eq!(language_size(&concrete, 3), 1);
    }

    #[test]
    fn express_entries_skips_opaque_slots_but_keeps_positions() {
        let queries = figure1_queries();
        let root = DiffNode::any(queries.iter().map(DiffNode::from_ast).collect());
        let entries = vec![
            LogEntry::Parsed(queries[0].clone()),
            LogEntry::Opaque {
                source: "SELECT @@ FROM".to_string(),
                errors: vec![SyntaxError::new("unexpected character `@`", 7)],
            },
            LogEntry::Parsed(queries[2].clone()),
        ];
        assert!(!entries[0].is_quarantined());
        assert!(entries[1].is_quarantined());
        assert_eq!(
            healthy_queries(&entries),
            vec![queries[0].clone(), queries[2].clone()]
        );

        let slots = express_entries(&root, &entries);
        assert_eq!(slots.len(), 3);
        assert!(slots[0].is_some());
        assert!(slots[1].is_none());
        assert!(slots[2].is_some());
        // Healthy slots agree with express_log over the healthy subsequence.
        let healthy = healthy_queries(&entries);
        let direct = express_log(&root, &healthy);
        assert_eq!(slots[0], direct[0]);
        assert_eq!(slots[2], direct[1]);
    }

    #[test]
    fn concrete_assignment_matches_express() {
        let query = q("select top 10 objid from stars where u between 0 and 30");
        let node = DiffNode::from_ast(&query);
        let via_express = express(&node, &query).unwrap();
        let via_concrete = ChoiceAssignment::concrete(&node);
        assert_eq!(via_express, via_concrete);
    }
}
