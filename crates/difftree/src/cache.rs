//! A bounded, counter-instrumented memo cache shared by the long-lived caches of the
//! workspace (the action index here, the cost layer's context/plan caches).
//!
//! The previous scheme — grow an `FxHashMap` to a trim threshold, then drop *everything* —
//! is fine for one-shot searches but wrong for a serving process: a multi-hour `mctsui
//! serve` run would periodically throw away its entire working set (including the summaries
//! of difftrees that every live session still references) and pay a full cold rebuild.
//!
//! [`GenerationCache`] replaces it with **generational second-chance eviction**: entries are
//! inserted into a *young* generation; when the young generation reaches half the capacity
//! it is demoted wholesale to *old* and the previous old generation is dropped. An entry
//! that is looked up while in the old generation is promoted back to young — its second
//! chance — so anything the live working set touches at least once per generation survives
//! rotation indefinitely, while one-shot entries age out after two rotations. The scheme is
//! O(1) per operation (no LRU lists, no per-entry clocks) and keeps the total entry count
//! at or below the configured capacity.
//!
//! Hits, misses, insertions and evictions are counted with relaxed atomics and surfaced as
//! [`CacheCounters`] so a serving process can report cache health through its stats
//! endpoint.
//!
//! Keys are `u64` structural fingerprints — all workspace memo caches key by fingerprint —
//! and values are cheap clones (`Arc` handles everywhere in practice).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A point-in-time snapshot of one cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Lookups served from the cache (young or old generation).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (first-insert-wins; re-inserting an existing key does not count).
    pub insertions: u64,
    /// Entries dropped by generation rotation without having been promoted.
    pub evictions: u64,
    /// Entries currently resident (young + old).
    pub entries: u64,
}

impl CacheCounters {
    /// Hit ratio in `[0, 1]` (`0` when the cache was never queried).
    pub fn hit_ratio(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Sum two snapshots field-wise (for aggregating several caches into one report).
    pub fn merged(&self, other: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
            entries: self.entries + other.entries,
        }
    }
}

/// The two resident generations. Entries live in `young` right after insertion or
/// promotion; a rotation moves the whole young map to `old` and drops the previous old map.
struct Generations<V> {
    young: FxHashMap<u64, V>,
    old: FxHashMap<u64, V>,
}

/// Default shard count of [`GenerationCache::new`] — enough to keep a serving worker pool
/// off each other's lock without fragmenting small caches (the constructor clamps shard
/// counts so tiny capacities degrade to fewer shards).
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// One lock's worth of a sharded [`GenerationCache`]: its own generations and its own
/// counters, so concurrent workers touching different shards never contend — on the lock
/// *or* on counter cache lines.
struct Shard<V> {
    inner: Mutex<Generations<V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> Shard<V> {
    fn new() -> Self {
        Self {
            inner: Mutex::new(Generations {
                young: FxHashMap::default(),
                old: FxHashMap::default(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn get(&self, capacity: usize, key: u64) -> Option<V> {
        let mut guard = self.inner.lock().expect("generation cache poisoned");
        if let Some(v) = guard.young.get(&key) {
            let v = v.clone();
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        if let Some(v) = guard.old.remove(&key) {
            // Second chance: the entry is in the live working set, keep it young.
            Self::rotate_if_full(capacity, &mut guard, &self.evictions);
            guard.young.insert(key, v.clone());
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn insert(&self, capacity: usize, key: u64, value: V) -> V {
        let mut guard = self.inner.lock().expect("generation cache poisoned");
        if let Some(v) = guard.young.get(&key) {
            return v.clone();
        }
        if let Some(v) = guard.old.remove(&key) {
            Self::rotate_if_full(capacity, &mut guard, &self.evictions);
            guard.young.insert(key, v.clone());
            return v;
        }
        Self::rotate_if_full(capacity, &mut guard, &self.evictions);
        guard.young.insert(key, value.clone());
        self.insertions.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// Demote young to old (dropping the previous old generation) once young holds half the
    /// shard capacity, so `young + old <= capacity` per shard at all times.
    fn rotate_if_full(capacity: usize, guard: &mut Generations<V>, evictions: &AtomicU64) {
        if guard.young.len() >= capacity / 2 {
            let dropped = std::mem::replace(&mut guard.old, std::mem::take(&mut guard.young));
            evictions.fetch_add(dropped.len() as u64, Ordering::Relaxed);
        }
    }

    fn len(&self) -> usize {
        let guard = self.inner.lock().expect("generation cache poisoned");
        guard.young.len() + guard.old.len()
    }

    fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

/// A bounded fingerprint-keyed memo with generational second-chance eviction and
/// hit/miss/eviction counters, **sharded by key** so the hot shared caches of a serving
/// process (rule bindings, contexts, plans) don't serialize every worker on one mutex.
/// See the module docs for the eviction scheme.
///
/// Each shard owns an independent generation pair bounded at `capacity / shards` entries,
/// so the configured total capacity still holds. Operations take one short per-shard
/// mutex; callers must follow the workspace lock discipline of never computing a value
/// while holding a reference into the cache (get, compute outside, insert — first insert
/// wins).
pub struct GenerationCache<V> {
    /// Maximum resident entries summed over all shards.
    capacity: usize,
    /// Per-shard entry bound (`>= 2` so both generations can hold something).
    shard_capacity: usize,
    shards: Vec<Shard<V>>,
}

impl<V: Clone> GenerationCache<V> {
    /// A cache holding at most `capacity` entries across [`DEFAULT_CACHE_SHARDS`] shards
    /// (fewer for tiny capacities — see [`GenerationCache::with_shards`]).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_CACHE_SHARDS)
    }

    /// A cache of at most `capacity` total entries split over `shards` independent locks.
    /// The shard count is clamped to `[1, capacity / 2]` so every shard keeps the minimum
    /// two-entry generation pair, preserving the total capacity bound.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(2);
        let shards = shards.clamp(1, (capacity / 2).max(1));
        let shard_capacity = (capacity / shards).max(2);
        Self {
            capacity,
            shard_capacity,
            shards: (0..shards).map(|_| Shard::new()).collect(),
        }
    }

    /// The configured total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards (independent locks) this cache is split over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`. Keys are already structural fingerprints, but a
    /// multiplicative mix keeps sequential or low-entropy keys from piling onto one shard.
    #[inline]
    fn shard_of(&self, key: u64) -> &Shard<V> {
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(mixed as usize) % self.shards.len()]
    }

    /// Look up `key`, promoting an old-generation hit back into the young generation.
    pub fn get(&self, key: u64) -> Option<V> {
        self.shard_of(key).get(self.shard_capacity, key)
    }

    /// Insert `value` under `key` unless an entry already exists (first insert wins under
    /// concurrency, matching the workspace's compute-outside-the-lock discipline). Returns
    /// the resident value.
    pub fn insert(&self, key: u64, value: V) -> V {
        self.shard_of(key).insert(self.shard_capacity, key, value)
    }

    /// Number of resident entries summed over all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Whether the cache is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters (summed over shards) plus the current entry count.
    pub fn counters(&self) -> CacheCounters {
        self.shards
            .iter()
            .map(Shard::counters)
            .fold(CacheCounters::default(), |acc, c| acc.merged(&c))
    }

    /// Per-shard counter snapshots, in shard order — surfaced through serving stats so a
    /// skewed shard (one hot fingerprint class) is visible from the outside.
    pub fn shard_counters(&self) -> Vec<CacheCounters> {
        self.shards.iter().map(Shard::counters).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_insert_are_counted() {
        let cache: GenerationCache<u32> = GenerationCache::new(8);
        assert_eq!(cache.get(1), None);
        cache.insert(1, 10);
        assert_eq!(cache.get(1), Some(10));
        let c = cache.counters();
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 1);
        assert_eq!(c.insertions, 1);
        assert_eq!(c.entries, 1);
        assert!(c.hit_ratio() > 0.49 && c.hit_ratio() < 0.51);
    }

    #[test]
    fn first_insert_wins() {
        let cache: GenerationCache<u32> = GenerationCache::new(8);
        assert_eq!(cache.insert(7, 1), 1);
        assert_eq!(cache.insert(7, 2), 1, "second insert must not overwrite");
        assert_eq!(cache.counters().insertions, 1);
    }

    #[test]
    fn capacity_is_bounded_and_evictions_counted() {
        let cache: GenerationCache<usize> = GenerationCache::new(8);
        for i in 0..100 {
            cache.insert(i as u64, i);
        }
        assert!(
            cache.len() <= 8,
            "resident entries {} exceed capacity",
            cache.len()
        );
        let c = cache.counters();
        assert_eq!(c.insertions, 100);
        assert!(c.evictions >= 100 - 8, "evictions {} too low", c.evictions);
    }

    #[test]
    fn touched_entries_survive_rotation() {
        // Capacity 8 → rotation every 4 young entries. Keep touching key 0 while streaming
        // other keys through; the hot key must survive arbitrarily many rotations.
        let cache: GenerationCache<usize> = GenerationCache::new(8);
        cache.insert(0, 999);
        for i in 1..200u64 {
            cache.insert(i, i as usize);
            assert_eq!(cache.get(0), Some(999), "hot entry evicted at step {i}");
        }
        // A cold key streamed through long ago is gone.
        assert_eq!(cache.get(1), None);
    }

    #[test]
    fn sharding_preserves_capacity_and_aggregates_counters() {
        // 64 entries over 8 shards: the total bound holds, per-shard counters sum to the
        // aggregate, and a key always lands on the same shard (get-after-insert hits).
        let cache: GenerationCache<u64> = GenerationCache::with_shards(64, 8);
        assert_eq!(cache.shard_count(), 8);
        for key in 0..500u64 {
            cache.insert(key, key * 3);
            assert_eq!(cache.get(key), Some(key * 3), "read-own-insert at {key}");
        }
        assert!(
            cache.len() <= 64,
            "resident {} exceeds capacity",
            cache.len()
        );
        let total = cache.counters();
        let summed = cache
            .shard_counters()
            .iter()
            .fold(CacheCounters::default(), |acc, c| acc.merged(c));
        assert_eq!(total, summed);
        assert_eq!(total.insertions, 500);
        assert!(total.hits >= 500);

        // Tiny capacities degrade to fewer shards instead of violating the bound.
        let tiny: GenerationCache<u64> = GenerationCache::with_shards(4, 8);
        assert_eq!(tiny.shard_count(), 2);
        for key in 0..100u64 {
            tiny.insert(key, key);
        }
        assert!(tiny.len() <= 4);
    }

    #[test]
    fn merged_counters_sum_fieldwise() {
        let a = CacheCounters {
            hits: 1,
            misses: 2,
            insertions: 3,
            evictions: 4,
            entries: 5,
        };
        let b = a.merged(&a);
        assert_eq!(b.hits, 2);
        assert_eq!(b.misses, 4);
        assert_eq!(b.insertions, 6);
        assert_eq!(b.evictions, 8);
        assert_eq!(b.entries, 10);
    }
}
