//! Property tests pinning the incremental action index to the reference scan.
//!
//! `RuleEngine::applicable` is served by fingerprint-memoized per-subtree binding summaries;
//! `RuleEngine::applicable_scan` is the unmemoized full walk it replaced. These tests pin:
//!
//! 1. index == scan (as *sequences*, which implies the multiset equality the memo must
//!    preserve) on random trees, and after random sequences of `apply` edits driven through
//!    one shared engine — the regime where the memo actually serves off-spine subtrees;
//! 2. `count_applicable == applicable().len()` everywhere;
//! 3. sampled-draw exactness: sweeping `nth_applicable` over `0..count` enumerates exactly
//!    the scan's applications (each one exactly once — uniformity by construction), and the
//!    first out-of-range index yields `None`;
//! 4. `first_applicable` equals `applicable().first()` (the `saturate_forward` fast path);
//! 5. `sample_applicable` is deterministic per seed and only ever returns members of the
//!    applicable set.

use proptest::prelude::*;

use mctsui_difftree::{initial_difftree, DiffTree, RuleEngine};
use mctsui_sql::{parse_query, Ast};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn query_log() -> impl Strategy<Value = Vec<Ast>> {
    let table = prop_oneof![Just("stars"), Just("galaxies"), Just("quasars")];
    let projection = prop_oneof![Just("objid"), Just("count(*)"), Just("ra")];
    let top = proptest::option::of(prop_oneof![Just(10i64), Just(100), Just(1000)]);
    let with_where = any::<bool>();
    let one = (table, projection, top, with_where).prop_map(|(t, p, top, w)| {
        let mut sql = String::from("select ");
        if let Some(n) = top {
            sql.push_str(&format!("top {n} "));
        }
        sql.push_str(&format!("{p} from {t}"));
        if w {
            sql.push_str(" where u between 0 and 30");
        }
        parse_query(&sql).expect("generated query parses")
    });
    proptest::collection::vec(one, 2..7)
}

/// Assert every index-vs-scan invariant for one state.
fn assert_index_matches_scan(engine: &RuleEngine, tree: &DiffTree) {
    let scanned = engine.applicable_scan(tree);
    let indexed = engine.applicable(tree);
    assert_eq!(indexed, scanned, "index diverged from reference scan");
    assert_eq!(engine.count_applicable(tree), scanned.len());
    assert_eq!(engine.first_applicable(tree), scanned.first().cloned());

    // Exhaustive draw sweep: every application is hit exactly once, in scan order.
    let swept: Vec<_> = (0..scanned.len())
        .map(|i| {
            engine
                .nth_applicable(tree, i)
                .expect("index within the counted fanout")
        })
        .collect();
    assert_eq!(swept, scanned);
    assert!(engine.nth_applicable(tree, scanned.len()).is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn index_matches_scan_on_random_trees(queries in query_log()) {
        let engine = RuleEngine::default();
        let tree = initial_difftree(&queries);
        assert_index_matches_scan(&engine, &tree);
        // The factored normal form exercises Multi/Opt-heavy shapes the initial tree lacks.
        let factored = engine.saturate_forward(&tree, 50);
        assert_index_matches_scan(&engine, &factored);
    }

    #[test]
    fn index_matches_scan_after_random_edit_sequences(
        queries in query_log(),
        picks in proptest::collection::vec(0usize..1000, 1..10),
    ) {
        // One engine across the whole walk: each step's query is served by the summaries
        // cached for the previous states, which is exactly the incremental path under test.
        let engine = RuleEngine::default();
        let mut tree = initial_difftree(&queries);
        for pick in picks {
            assert_index_matches_scan(&engine, &tree);
            let apps = engine.applicable(&tree);
            if apps.is_empty() {
                break;
            }
            let app = &apps[pick % apps.len()];
            match engine.apply(&tree, app) {
                Some(next) => tree = next,
                None => break,
            }
        }
        assert_index_matches_scan(&engine, &tree);
    }

    #[test]
    fn sampled_draws_are_seeded_members_of_the_applicable_set(
        queries in query_log(),
        seed in 0u64..1000,
    ) {
        let engine = RuleEngine::default();
        let tree = initial_difftree(&queries);
        let all = engine.applicable(&tree);
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let x = engine.sample_applicable(&tree, &mut a);
            let y = engine.sample_applicable(&tree, &mut b);
            // Same seed must give the same draw.
            prop_assert_eq!(&x, &y);
            match x {
                Some(app) => prop_assert!(all.contains(&app)),
                None => prop_assert!(all.is_empty()),
            }
        }
    }

    #[test]
    fn forward_engine_index_matches_its_scan(queries in query_log(), steps in 0usize..5) {
        // The forward-only rule subset has its own index configuration; pin it separately
        // since `saturate_forward` rides on its `first_applicable`.
        let engine = RuleEngine::forward_only();
        let mut tree = initial_difftree(&queries);
        for step in 0..steps {
            assert_index_matches_scan(&engine, &tree);
            let Some(app) = engine.first_applicable(&tree) else { break };
            let scanned = engine.applicable_scan(&tree);
            prop_assert_eq!(Some(&app), scanned.first());
            match engine.apply(&tree, &app) {
                Some(next) => tree = next,
                None => break,
            }
            let _ = step;
        }
        assert_index_matches_scan(&engine, &tree);
    }
}
