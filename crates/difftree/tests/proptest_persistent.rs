//! Property tests for the persistent (Arc-shared, cache-carrying) difftree representation.
//!
//! The representation changed from deep-owned `Vec<DiffNode>` children to structurally
//! shared persistent trees; these tests pin down that the change is *unobservable* through
//! the public API, and that the sharing the refactor promises actually happens:
//!
//! 1. `size` / `depth` / `choice_count` / `choice_paths` agree with a naive deep-owned
//!    reference implementation on random trees.
//! 2. `replace_at` produces exactly the tree the reference implementation produces
//!    (including `None` on invalid paths).
//! 3. `express` results are identical on a shared-spine tree and on a freshly rebuilt,
//!    totally unshared copy of the same tree (so sharing never leaks into matching).
//! 4. After `replace_at`, every subtree off the edited spine is **pointer-equal** to its
//!    counterpart in the original tree, and `Clone` of a search state shares the root.

use proptest::prelude::*;

use mctsui_difftree::derive::{derive_query, express};
use mctsui_difftree::{
    initial_difftree, DiffKind, DiffNode, DiffPath, DiffTree, Label, RuleEngine,
};
use mctsui_sql::{parse_query, Ast};

// ---------------------------------------------------------------------------------------
// A naive deep-owned reference implementation (the seed semantics)
// ---------------------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct RefNode {
    kind: DiffKind,
    label: Option<Label>,
    children: Vec<RefNode>,
}

fn mirror(node: &DiffNode) -> RefNode {
    RefNode {
        kind: node.kind(),
        label: node.label().cloned(),
        children: node.children().iter().map(mirror).collect(),
    }
}

/// Rebuild a totally fresh persistent tree (shares nothing with the tree `mirror` came from).
fn rebuild(node: &RefNode) -> DiffNode {
    let children: Vec<DiffNode> = node.children.iter().map(rebuild).collect();
    match node.kind {
        DiffKind::All => DiffNode::all(
            node.label.clone().expect("All nodes carry labels"),
            children,
        ),
        DiffKind::Any => DiffNode::any(children),
        DiffKind::Opt => DiffNode::opt(children.into_iter().next().expect("Opt has a child")),
        DiffKind::Multi => DiffNode::multi(children.into_iter().next().expect("Multi has a child")),
    }
}

fn ref_size(node: &RefNode) -> usize {
    1 + node.children.iter().map(ref_size).sum::<usize>()
}

fn ref_depth(node: &RefNode) -> usize {
    1 + node.children.iter().map(ref_depth).max().unwrap_or(0)
}

fn ref_choice_paths(node: &RefNode, path: DiffPath, out: &mut Vec<DiffPath>) {
    if node.kind.is_choice() {
        out.push(path.clone());
    }
    for (i, child) in node.children.iter().enumerate() {
        ref_choice_paths(child, path.child(i), out);
    }
}

fn ref_replace_at(node: &RefNode, steps: &[usize], replacement: &RefNode) -> Option<RefNode> {
    match steps.split_first() {
        None => Some(replacement.clone()),
        Some((&idx, rest)) => {
            if idx >= node.children.len() {
                return None;
            }
            let mut copy = node.clone();
            copy.children[idx] = ref_replace_at(&node.children[idx], rest, replacement)?;
            Some(copy)
        }
    }
}

// ---------------------------------------------------------------------------------------
// Random realistic trees: rule-application walks over random query logs
// ---------------------------------------------------------------------------------------

fn query_log() -> impl Strategy<Value = Vec<Ast>> {
    let table = prop_oneof![Just("stars"), Just("galaxies"), Just("quasars")];
    let projection = prop_oneof![Just("objid"), Just("count(*)"), Just("ra")];
    let top = proptest::option::of(prop_oneof![Just(10i64), Just(100), Just(1000)]);
    let with_where = any::<bool>();
    let one = (table, projection, top, with_where).prop_map(|(t, p, top, w)| {
        let mut sql = String::from("select ");
        if let Some(n) = top {
            sql.push_str(&format!("top {n} "));
        }
        sql.push_str(&format!("{p} from {t}"));
        if w {
            sql.push_str(" where u between 0 and 30");
        }
        parse_query(&sql).expect("generated query parses")
    });
    proptest::collection::vec(one, 2..7)
}

/// A deterministic pseudo-random rule walk (as in `proptest_rules.rs`).
fn random_walk(queries: &[Ast], steps: usize, seed: usize) -> DiffTree {
    let engine = RuleEngine::default();
    let mut tree = initial_difftree(queries);
    for step in 0..steps {
        let apps = engine.applicable(&tree);
        if apps.is_empty() {
            break;
        }
        let idx = (seed.wrapping_mul(31).wrapping_add(step * 17)) % apps.len();
        match engine.apply(&tree, &apps[idx]) {
            Some(next) => tree = next,
            None => break,
        }
    }
    tree
}

/// Pick a pseudo-random existing path of the tree.
fn pick_path(tree: &DiffTree, seed: usize) -> DiffPath {
    let walk = tree.root().walk();
    walk[(seed.wrapping_mul(131)) % walk.len()].0.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn metrics_match_reference(queries in query_log(), seed in 0usize..1000, steps in 0usize..6) {
        let tree = random_walk(&queries, steps, seed);
        let reference = mirror(tree.root());
        prop_assert_eq!(tree.size(), ref_size(&reference));
        prop_assert_eq!(tree.root().depth(), ref_depth(&reference));
        let mut expected_paths = Vec::new();
        ref_choice_paths(&reference, DiffPath::root(), &mut expected_paths);
        prop_assert_eq!(tree.choice_paths(), expected_paths.clone());
        prop_assert_eq!(tree.choice_count(), expected_paths.len());
    }

    #[test]
    fn replace_at_matches_reference(queries in query_log(), seed in 0usize..1000, steps in 0usize..6) {
        let tree = random_walk(&queries, steps, seed);
        let reference = mirror(tree.root());
        let target = pick_path(&tree, seed);
        let replacement = DiffNode::any(vec![
            DiffNode::from_ast(&queries[0]),
            DiffNode::empty(),
        ]);
        let ref_replacement = mirror(&replacement);

        let edited = tree.replace_at(&target, replacement).expect("existing path");
        let ref_edited =
            ref_replace_at(&reference, &target.0, &ref_replacement).expect("existing path");
        prop_assert_eq!(mirror(edited.root()), ref_edited);

        // Invalid paths are rejected identically.
        let mut bogus = target.0.clone();
        bogus.push(usize::MAX);
        prop_assert!(tree.replace_at(&DiffPath(bogus.clone()), DiffNode::empty()).is_none());
        prop_assert!(ref_replace_at(&reference, &bogus, &RefNode {
            kind: DiffKind::All,
            label: Some(Label::empty()),
            children: Vec::new(),
        }).is_none());
    }

    #[test]
    fn express_is_sharing_oblivious(queries in query_log(), seed in 0usize..1000) {
        // A tree produced by shared-spine rule applications and a totally fresh rebuild of
        // the same structure must express exactly the same queries with the same
        // assignments.
        let shared = random_walk(&queries, 4, seed);
        let fresh = DiffTree::new(rebuild(&mirror(shared.root())));
        prop_assert_eq!(shared.fingerprint(), fresh.fingerprint());
        for q in &queries {
            let a = express(shared.root(), q);
            let b = express(fresh.root(), q);
            prop_assert_eq!(&a, &b);
            let assignment = a.expect("rule walks preserve expressibility");
            prop_assert_eq!(&derive_query(shared.root(), &assignment).expect("derivable"), q);
        }
    }

    #[test]
    fn replace_at_shares_everything_off_the_spine(
        queries in query_log(),
        seed in 0usize..1000,
        steps in 0usize..6,
    ) {
        let tree = random_walk(&queries, steps, seed);
        let target = pick_path(&tree, seed);
        let edited = tree.replace_at(&target, DiffNode::empty()).expect("existing path");

        for (path, original_node) in tree.root().walk() {
            let off_spine = !target.is_prefix_of(&path) && !path.is_prefix_of(&target);
            if off_spine {
                let edited_node = edited.node_at(&path).expect("off-spine path survives");
                prop_assert!(
                    DiffNode::ptr_eq(original_node, edited_node),
                    "subtree at {} was copied instead of shared",
                    path
                );
            }
        }
        // Spine nodes (strict ancestors of the target) are rebuilt, not shared.
        if let Some(parent) = target.parent() {
            let rebuilt = edited.node_at(&parent).expect("ancestor exists");
            prop_assert!(!DiffNode::ptr_eq(tree.node_at(&parent).expect("ancestor"), rebuilt));
        }
    }

    #[test]
    fn state_clone_is_a_shared_handle(queries in query_log(), seed in 0usize..1000) {
        let tree = random_walk(&queries, 3, seed);
        let copied = tree.clone();
        prop_assert!(DiffNode::ptr_eq(tree.root(), copied.root()));
        prop_assert_eq!(tree, copied);
    }
}
