//! `RuleEngine::apply` must reject — never panic on — stale [`RuleApplication`]s.
//!
//! MCTS keeps applications around (in `untried` lists, in replayed traces) while the tree
//! they were captured from is edited underneath them. Applying such a stale application to
//! the edited tree must return `None` for every rule: the target path may have vanished, or
//! the node at the path may no longer match the rule. This suite constructs, for each of the
//! ten rules, a tree where the rule fires, captures the application, invalidates it with a
//! `replace_at` edit, and asserts the `None`.

use mctsui_difftree::{
    initial_difftree, DiffNode, DiffPath, DiffTree, RuleApplication, RuleEngine, RuleId,
};
use mctsui_sql::{parse_query, Ast};

fn q(sql: &str) -> Ast {
    parse_query(sql).unwrap()
}

/// A tree on which `rule` has at least one binding (constructions mirror the rule-module
/// unit tests).
fn tree_admitting(rule: RuleId) -> DiffTree {
    let node = match rule {
        RuleId::Any2All => DiffNode::any(vec![
            DiffNode::from_ast(&q("SELECT Sales FROM sales WHERE cty = 'USA'")),
            DiffNode::from_ast(&q("SELECT Costs FROM sales WHERE cty = 'EUR'")),
            DiffNode::from_ast(&q("SELECT Costs FROM sales")),
        ]),
        // The factored Figure 1 tree is an ALL with ANY children: Any2AllInverse fires.
        RuleId::Any2AllInverse => {
            let engine = RuleEngine::default();
            let initial = initial_difftree(&[
                q("SELECT Sales FROM sales WHERE cty = 'USA'"),
                q("SELECT Costs FROM sales WHERE cty = 'EUR'"),
                q("SELECT Costs FROM sales"),
            ]);
            let any2all = engine
                .applicable(&initial)
                .into_iter()
                .find(|a| a.rule == RuleId::Any2All)
                .expect("figure 1 admits Any2All");
            return engine.apply(&initial, &any2all).expect("applies");
        }
        RuleId::Lift => DiffNode::any(vec![
            DiffNode::from_ast(&q("select x from t").children()[0]),
            DiffNode::from_ast(&q("select y from t").children()[0]),
        ]),
        RuleId::MultiMerge => DiffNode::any(vec![
            DiffNode::from_ast(&q("select x from a").children()[1]),
            DiffNode::from_ast(&q("select x from a, a, a").children()[1]),
        ]),
        RuleId::Multi => DiffNode::from_ast(&q("select x from a, a, a").children()[1]),
        RuleId::Optional => DiffNode::any(vec![
            DiffNode::from_ast(&q("select x from t where a = 1").children()[2]),
            DiffNode::empty(),
        ]),
        RuleId::OptionalInverse => {
            DiffNode::opt(DiffNode::from_ast(&q("select x from t").children()[0]))
        }
        RuleId::Noop => DiffNode::any(vec![DiffNode::from_ast(&q("select x from t"))]),
        RuleId::DedupAny => {
            let a = DiffNode::from_ast(&q("select x from t"));
            let b = DiffNode::from_ast(&q("select y from t"));
            DiffNode::any(vec![a.clone(), b, a])
        }
        RuleId::FlattenAny => DiffNode::any(vec![
            DiffNode::any(vec![
                DiffNode::from_ast(&q("select x from t")),
                DiffNode::from_ast(&q("select y from t")),
            ]),
            DiffNode::from_ast(&q("select z from t")),
        ]),
    };
    DiffTree::new(node)
}

#[test]
fn every_rule_rejects_an_application_whose_target_no_longer_matches() {
    let engine = RuleEngine::default();
    for rule in RuleId::ALL {
        let tree = tree_admitting(rule);
        let apps: Vec<RuleApplication> = engine
            .applicable(&tree)
            .into_iter()
            .filter(|a| a.rule == rule)
            .collect();
        assert!(!apps.is_empty(), "{rule}: construction must admit the rule");

        for app in &apps {
            // Sanity: the fresh application applies.
            assert!(
                engine.apply(&tree, app).is_some(),
                "{rule}: fresh application must apply"
            );
            // Invalidate the target: the empty alternative matches no rule, so the stale
            // application must be rejected (not panic) on the edited tree.
            let edited = tree
                .replace_at(&app.path, DiffNode::empty())
                .expect("target path exists");
            assert!(
                engine.apply(&edited, app).is_none(),
                "{rule}: stale application at {} must be rejected",
                app.path
            );
        }
    }
}

#[test]
fn every_rule_rejects_an_application_whose_path_vanished() {
    let engine = RuleEngine::default();
    for rule in RuleId::ALL {
        let tree = tree_admitting(rule);
        let apps: Vec<RuleApplication> = engine
            .applicable(&tree)
            .into_iter()
            .filter(|a| a.rule == rule)
            .collect();
        for app in &apps {
            // Point the application below a leaf: the path cannot resolve.
            let mut bogus = app.clone();
            bogus.path = DiffPath(
                app.path
                    .0
                    .iter()
                    .copied()
                    .chain([usize::MAX, usize::MAX])
                    .collect(),
            );
            assert!(
                engine.apply(&tree, &bogus).is_none(),
                "{rule}: unresolvable path must be rejected"
            );
        }
    }
}

#[test]
fn arg_bearing_rules_reject_out_of_range_args() {
    let engine = RuleEngine::default();
    for rule in [RuleId::Multi, RuleId::Any2AllInverse] {
        let tree = tree_admitting(rule);
        let app = engine
            .applicable(&tree)
            .into_iter()
            .find(|a| a.rule == rule)
            .expect("admits the rule");
        let stale = RuleApplication {
            arg: Some(9999),
            ..app
        };
        assert!(
            engine.apply(&tree, &stale).is_none(),
            "{rule}: out-of-range arg must be rejected"
        );
    }
}

#[test]
fn applications_survive_edits_elsewhere() {
    // The counterpart guarantee: an application whose target subtree was *not* touched by
    // the edit still applies (paths are positional, so this only holds for edits that do
    // not shift the target's path — here we edit a different root alternative).
    let engine = RuleEngine::default();
    let tree = DiffTree::new(DiffNode::any(vec![
        DiffNode::from_ast(&q("select x from a, a, a")),
        DiffNode::from_ast(&q("select y from t")),
    ]));
    let multi = engine
        .applicable(&tree)
        .into_iter()
        .find(|a| a.rule == RuleId::Multi)
        .expect("the repeated FROM admits Multi");
    assert_eq!(multi.path.0.first(), Some(&0), "target is alternative 0");
    let edited = tree
        .replace_at(&DiffPath(vec![1]), DiffNode::empty())
        .expect("path exists");
    assert!(
        engine.apply(&edited, &multi).is_some(),
        "an edit elsewhere must not invalidate the application"
    );
}
