//! Property-based tests for the difftree machinery.
//!
//! Central invariants (the search relies on all of them):
//!
//! 1. The initial difftree expresses every input query.
//! 2. Every transformation rule application preserves expressibility of every input query.
//! 3. `derive(express(q)) == q` whenever `express` succeeds.
//! 4. Canonicalisation is idempotent and stable under alternative reordering.

use proptest::prelude::*;

use mctsui_difftree::derive::{derive_query, express, expresses_all};
use mctsui_difftree::{initial_difftree, DiffTree, RuleEngine};
use mctsui_sql::{parse_query, Ast};

/// Generate a small query log with controlled variation, in the spirit of the paper's
/// Listing 1: a shared template where the table, projection, TOP-N and predicate bounds vary.
fn query_log() -> impl Strategy<Value = Vec<Ast>> {
    let table = prop_oneof![Just("stars"), Just("galaxies"), Just("quasars")];
    let projection = prop_oneof![Just("objid"), Just("count(*)"), Just("ra"), Just("dec")];
    let top = proptest::option::of(prop_oneof![Just(10i64), Just(100), Just(1000)]);
    let bound = 0i64..40;
    let with_where = any::<bool>();

    let one_query = (table, projection, top, bound, with_where).prop_map(
        |(table, projection, top, bound, with_where)| {
            let mut sql = String::from("select ");
            if let Some(n) = top {
                sql.push_str(&format!("top {n} "));
            }
            sql.push_str(&format!("{projection} from {table}"));
            if with_where {
                sql.push_str(&format!(
                    " where u between {bound} and 30 and g between 0 and 30"
                ));
            }
            parse_query(&sql).expect("generated query parses")
        },
    );
    proptest::collection::vec(one_query, 2..8)
}

/// Apply `steps` random rule applications starting from the initial tree, checking
/// expressibility after every step. Returns the final tree.
fn random_walk(queries: &[Ast], steps: usize, seed: usize) -> DiffTree {
    let engine = RuleEngine::default();
    let mut tree = initial_difftree(queries);
    for step in 0..steps {
        let apps = engine.applicable(&tree);
        if apps.is_empty() {
            break;
        }
        // Deterministic pseudo-random pick derived from the proptest-provided seed.
        let idx = (seed.wrapping_mul(31).wrapping_add(step * 17)) % apps.len();
        let Some(next) = engine.apply(&tree, &apps[idx]) else {
            panic!("applicable rule failed to apply: {:?}", apps[idx]);
        };
        tree = next;
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn initial_tree_expresses_all_queries(queries in query_log()) {
        let tree = initial_difftree(&queries);
        prop_assert!(expresses_all(tree.root(), &queries));
    }

    #[test]
    fn rules_preserve_expressibility(queries in query_log(), seed in 0usize..1000, steps in 1usize..8) {
        let tree = random_walk(&queries, steps, seed);
        prop_assert!(
            expresses_all(tree.root(), &queries),
            "after a random walk the tree no longer expresses all inputs:\n{}",
            tree.root().sexpr()
        );
    }

    #[test]
    fn express_then_derive_is_identity(queries in query_log(), seed in 0usize..1000) {
        let tree = random_walk(&queries, 4, seed);
        for q in &queries {
            let assignment = express(tree.root(), q).expect("expressible");
            let derived = derive_query(tree.root(), &assignment).expect("derivable");
            prop_assert_eq!(&derived, q);
        }
    }

    #[test]
    fn canonicalisation_is_idempotent(queries in query_log(), seed in 0usize..1000) {
        let tree = random_walk(&queries, 3, seed);
        let once = tree.root().canonical();
        let twice = once.canonical();
        prop_assert_eq!(&once, &twice);
    }

    #[test]
    fn canonical_fingerprint_ignores_alternative_order(queries in query_log()) {
        let forward = initial_difftree(&queries);
        let mut reversed_queries = queries.clone();
        reversed_queries.reverse();
        let backward = initial_difftree(&reversed_queries);
        prop_assert_eq!(forward.canonical_fingerprint(), backward.canonical_fingerprint());
    }

    #[test]
    fn rule_application_never_loses_choice_free_queries(queries in query_log(), seed in 0usize..1000) {
        // The number of choice nodes can grow or shrink, but the tree must stay well-formed:
        // every choice path must resolve to a choice node and sizes stay positive.
        let tree = random_walk(&queries, 5, seed);
        for path in tree.choice_paths() {
            let node = tree.node_at(&path).expect("choice path resolves");
            prop_assert!(node.is_choice());
        }
        prop_assert!(tree.size() >= 1);
        prop_assert!(tree.choice_count() <= tree.size());
    }
}
