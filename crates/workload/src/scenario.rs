//! Named experiment scenarios: the query log + screen pairs behind each panel of Figure 6.

use serde::{Deserialize, Serialize};

use mctsui_sql::Ast;
use mctsui_widgets::Screen;

use crate::corpus::{CorpusSpec, SchemaFamily};
use crate::sdss::{sdss_listing1, sdss_subset};
use crate::synthetic::LogSpec;

/// Identifier of a predefined experiment scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioId {
    /// Figure 6(a): all ten Listing 1 queries, wide screen.
    Fig6aWide,
    /// Figure 6(b): all ten Listing 1 queries, narrow screen.
    Fig6bNarrow,
    /// Figure 6(c): queries 6-8 only, wide screen.
    Fig6cSubset,
    /// Figure 6(d): all queries, wide screen, but the *initial* (unfactored) difftree —
    /// the low-reward interface.
    Fig6dLowReward,
    /// The three-query example of Figure 1/2 (used by the quickstart).
    Figure1,
    /// A BI-style flight-delay log (used by the `flight_delays` example).
    FlightDelays,
}

impl ScenarioId {
    /// Every predefined scenario.
    pub const ALL: [ScenarioId; 6] = [
        ScenarioId::Fig6aWide,
        ScenarioId::Fig6bNarrow,
        ScenarioId::Fig6cSubset,
        ScenarioId::Fig6dLowReward,
        ScenarioId::Figure1,
        ScenarioId::FlightDelays,
    ];

    /// Short stable name used on the command line and in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioId::Fig6aWide => "fig6a-wide",
            ScenarioId::Fig6bNarrow => "fig6b-narrow",
            ScenarioId::Fig6cSubset => "fig6c-subset",
            ScenarioId::Fig6dLowReward => "fig6d-lowreward",
            ScenarioId::Figure1 => "figure1",
            ScenarioId::FlightDelays => "flight-delays",
        }
    }

    /// Parse a scenario name (as produced by [`ScenarioId::name`]).
    pub fn parse(name: &str) -> Option<ScenarioId> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete scenario: the queries, the screen and a human-readable description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Registry name of the scenario (a [`ScenarioId`] name or `corpus:<family>:<seed>`).
    pub name: String,
    /// The query log.
    pub queries: Vec<Ast>,
    /// The target screen.
    pub screen: Screen,
    /// What the scenario reproduces.
    pub description: String,
}

impl Scenario {
    /// Resolve any registered scenario name: the six predefined [`ScenarioId`] names, or a
    /// generated corpus scenario addressed as `corpus:<family>:<seed>` (see
    /// [`crate::corpus`]). On a miss the error lists every known name plus the corpus
    /// syntax, so callers can surface it directly.
    pub fn resolve(name: &str) -> Result<Scenario, String> {
        if let Some(id) = ScenarioId::parse(name) {
            return Ok(Scenario::load(id));
        }
        if let Some(spec) = CorpusSpec::parse_name(name) {
            return Ok(Scenario::from_corpus(spec));
        }
        let known: Vec<&str> = ScenarioId::ALL.iter().map(|s| s.name()).collect();
        let families: Vec<&str> = SchemaFamily::ALL.iter().map(|f| f.name()).collect();
        Err(format!(
            "unknown scenario `{name}`; known scenarios: {}, or corpus:<family>:<seed> with family in {{{}}}",
            known.join(", "),
            families.join(", ")
        ))
    }

    /// Materialise a generated corpus scenario.
    pub fn from_corpus(spec: CorpusSpec) -> Scenario {
        let log = spec.generate();
        let screen = match spec.family {
            SchemaFamily::Star | SchemaFamily::Snowflake => Screen::wide(),
            SchemaFamily::Log => Screen::narrow(),
        };
        Scenario {
            name: spec.scenario_name(),
            description: format!(
                "Generated {} corpus session over `{}` ({} queries, seed {})",
                spec.family,
                log.schema.table,
                log.len(),
                spec.seed
            ),
            queries: log.queries,
            screen,
        }
    }

    /// Materialise a predefined scenario.
    pub fn load(id: ScenarioId) -> Scenario {
        let name = id.name().to_string();
        match id {
            ScenarioId::Fig6aWide => Scenario {
                name,
                queries: sdss_listing1(),
                screen: Screen::wide(),
                description: "Figure 6(a): all Listing 1 queries on a wide screen".into(),
            },
            ScenarioId::Fig6bNarrow => Scenario {
                name,
                queries: sdss_listing1(),
                screen: Screen::narrow(),
                description: "Figure 6(b): all Listing 1 queries on a narrow screen".into(),
            },
            ScenarioId::Fig6cSubset => Scenario {
                name,
                queries: sdss_subset(6, 8),
                screen: Screen::wide(),
                description: "Figure 6(c): queries 6-8 only (same WHERE, varying TOP-N)".into(),
            },
            ScenarioId::Fig6dLowReward => Scenario {
                name,
                queries: sdss_listing1(),
                screen: Screen::wide(),
                description:
                    "Figure 6(d): the low-reward interface derived from the unfactored difftree"
                        .into(),
            },
            ScenarioId::Figure1 => Scenario {
                name,
                queries: vec![
                    mctsui_sql::parse_query("SELECT Sales FROM sales WHERE cty = 'USA'").unwrap(),
                    mctsui_sql::parse_query("SELECT Costs FROM sales WHERE cty = 'EUR'").unwrap(),
                    mctsui_sql::parse_query("SELECT Costs FROM sales").unwrap(),
                ],
                screen: Screen::wide(),
                description: "The three-query running example of Figures 1-3".into(),
            },
            ScenarioId::FlightDelays => Scenario {
                name,
                queries: LogSpec::flights_style(12, 2024).generate().queries,
                screen: Screen::wide(),
                description: "A BI-style flight-delay analysis session (synthetic)".into(),
            },
        }
    }

    /// Number of queries in the scenario's log.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_loads_with_nonempty_log() {
        for id in ScenarioId::ALL {
            let s = Scenario::load(id);
            assert!(!s.queries.is_empty(), "{id} has queries");
            assert!(!s.description.is_empty());
            assert_eq!(s.name, id.name());
        }
    }

    #[test]
    fn resolve_accepts_builtin_and_corpus_names() {
        for id in ScenarioId::ALL {
            let s = Scenario::resolve(id.name()).expect("builtin resolves");
            assert_eq!(s, Scenario::load(id));
        }
        let corpus = Scenario::resolve("corpus:star:3").expect("corpus resolves");
        assert_eq!(corpus.name, "corpus:star:3");
        assert!(!corpus.queries.is_empty());
        // Deterministic across resolves.
        assert_eq!(corpus, Scenario::resolve("corpus:star:3").unwrap());
    }

    #[test]
    fn resolve_miss_lists_known_names() {
        let err = Scenario::resolve("fig6z-unknown").unwrap_err();
        for id in ScenarioId::ALL {
            assert!(err.contains(id.name()), "error lists {id}: {err}");
        }
        assert!(err.contains("corpus:<family>:<seed>"), "{err}");
        assert!(err.contains("snowflake"), "{err}");
        // Malformed corpus names also miss with the same guidance.
        assert!(Scenario::resolve("corpus:star:xyz").is_err());
        assert!(Scenario::resolve("corpus:hexagon:1").is_err());
    }

    #[test]
    fn names_parse_back() {
        for id in ScenarioId::ALL {
            assert_eq!(ScenarioId::parse(id.name()), Some(id));
            assert_eq!(format!("{id}"), id.name());
        }
        assert_eq!(ScenarioId::parse("nope"), None);
    }

    #[test]
    fn figure6_scenarios_have_expected_shape() {
        assert_eq!(Scenario::load(ScenarioId::Fig6aWide).query_count(), 10);
        assert_eq!(Scenario::load(ScenarioId::Fig6cSubset).query_count(), 3);
        assert!(
            Scenario::load(ScenarioId::Fig6aWide)
                .screen
                .widget_area_width()
                > Scenario::load(ScenarioId::Fig6bNarrow)
                    .screen
                    .widget_area_width()
        );
        assert_eq!(Scenario::load(ScenarioId::Figure1).query_count(), 3);
    }

    #[test]
    fn flight_delays_scenario_is_deterministic() {
        let a = Scenario::load(ScenarioId::FlightDelays);
        let b = Scenario::load(ScenarioId::FlightDelays);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.query_count(), 12);
    }
}
