//! Generated scenario corpus: parameterised schema families and drifting session logs.
//!
//! The hand-written scenarios of [`crate::scenario`] exercise a sliver of the input space;
//! the differential fuzz harness (`mctsui-bench`'s `fuzzdiff`) needs thousands of distinct
//! but realistic analysis sessions. A [`CorpusSpec`] — a [`SchemaFamily`] plus a seed —
//! deterministically generates a schema (tables, column types, cardinalities) and a query
//! log with *session drift*: each query is a small mutation of the previous one (predicate
//! bounds, projection/aggregate swaps, group-by toggles), which is exactly the interaction
//! pattern the paper assumes and the refine path must express.
//!
//! Corpus scenarios are addressable everywhere scenario names are accepted, as
//! `corpus:<family>:<seed>` (see [`crate::scenario::Scenario::resolve`]). The generators
//! deliberately emit the full dialect the SQL front-end supports — including scalar
//! subqueries in predicates, simple CTEs and expression-level arithmetic — so the fuzz
//! ladder sweeps those constructs through derive, search and serve.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mctsui_sql::{parse_query, Ast};

/// The shape of a generated schema (and the flavour of its query log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemaFamily {
    /// One denormalised fact table with categorical dimensions and numeric measures;
    /// BI-style slicing sessions with group-bys and scalar-subquery benchmarks.
    Star,
    /// A normalised flavour of [`SchemaFamily::Star`]: sessions routinely pre-filter
    /// through a `WITH base AS (...)` common table expression before slicing.
    Snowflake,
    /// An append-only event/request log: `LIKE` path filters, status `IN` lists, latency
    /// arithmetic and top-N sessions.
    Log,
}

impl SchemaFamily {
    /// Every schema family, in the order `fuzzdiff --families all` sweeps them.
    pub const ALL: [SchemaFamily; 3] = [
        SchemaFamily::Star,
        SchemaFamily::Snowflake,
        SchemaFamily::Log,
    ];

    /// Short stable name used in `corpus:<family>:<seed>` scenario names.
    pub fn name(&self) -> &'static str {
        match self {
            SchemaFamily::Star => "star",
            SchemaFamily::Snowflake => "snowflake",
            SchemaFamily::Log => "log",
        }
    }

    /// Parse a family name (as produced by [`SchemaFamily::name`]).
    pub fn parse(name: &str) -> Option<SchemaFamily> {
        Self::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Per-family seed salt so `corpus:star:7` and `corpus:log:7` differ structurally.
    fn salt(&self) -> u64 {
        match self {
            SchemaFamily::Star => 0x5354_4152,
            SchemaFamily::Snowflake => 0x534E_4F57,
            SchemaFamily::Log => 0x4C4F_475F,
        }
    }
}

impl std::fmt::Display for SchemaFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A corpus scenario specification: the family plus the seed fully determine the schema
/// and the session log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Which schema family to generate.
    pub family: SchemaFamily,
    /// Seed of both the schema and the session drift.
    pub seed: u64,
}

impl CorpusSpec {
    /// Create a spec.
    pub fn new(family: SchemaFamily, seed: u64) -> Self {
        Self { family, seed }
    }

    /// The registry name of this spec: `corpus:<family>:<seed>`.
    pub fn scenario_name(&self) -> String {
        format!("corpus:{}:{}", self.family, self.seed)
    }

    /// Parse a `corpus:<family>:<seed>` scenario name.
    pub fn parse_name(name: &str) -> Option<CorpusSpec> {
        let rest = name.strip_prefix("corpus:")?;
        let (family, seed) = rest.split_once(':')?;
        Some(CorpusSpec {
            family: SchemaFamily::parse(family)?,
            seed: seed.parse().ok()?,
        })
    }

    /// Generate the schema and drifting session log described by this spec.
    ///
    /// Deterministic: the same spec always produces the same log.
    pub fn generate(&self) -> CorpusLog {
        self.generate_with_appends(0).0
    }

    /// Generate the session log plus `appends` *further* drift queries from the same
    /// drift stream — the queries this session's user would submit next.
    ///
    /// The returned log is bit-identical to [`CorpusSpec::generate`] (the appends
    /// continue the rng stream strictly after the base log is complete), so a live
    /// session admitted on the base log and then fed the appended queries replays
    /// exactly the longer session this generator would have produced.
    pub fn generate_with_appends(&self, appends: usize) -> (CorpusLog, Vec<String>) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.family.salt());
        let schema = CorpusSchema::generate(self.family, &mut rng);
        let length = rng.gen_range(6usize..=12);
        let mut draft = Draft::initial(self.family, &schema, &mut rng);
        let mut sql = Vec::with_capacity(length + appends);
        sql.push(draft.render(&schema));
        Self::drift_to(&mut sql, &mut draft, length, self.family, &schema, &mut rng);
        let queries = sql
            .iter()
            .map(|s| {
                parse_query(s).unwrap_or_else(|e| {
                    panic!("corpus generator emitted unparseable SQL `{s}`: {e}")
                })
            })
            .collect();
        let log = CorpusLog {
            spec: *self,
            schema: schema.clone(),
            sql: sql.clone(),
            queries,
        };
        Self::drift_to(
            &mut sql,
            &mut draft,
            length + appends,
            self.family,
            &schema,
            &mut rng,
        );
        (log, sql.split_off(length))
    }

    /// Extend `sql` with drifted queries until it holds `target` entries.
    fn drift_to(
        sql: &mut Vec<String>,
        draft: &mut Draft,
        target: usize,
        family: SchemaFamily,
        schema: &CorpusSchema,
        rng: &mut StdRng,
    ) {
        while sql.len() < target {
            // Force visible drift: retry mutations until the rendered SQL changes.
            for _attempt in 0..16 {
                let mut next = draft.clone();
                next.mutate(family, schema, rng);
                let rendered = next.render(schema);
                if &rendered != sql.last().expect("nonempty") {
                    *draft = next;
                    sql.push(rendered);
                    break;
                }
            }
        }
    }
}

/// The kind (and value domain) of a generated column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnKind {
    /// A numeric measure — the target of aggregates and arithmetic.
    Measure,
    /// A numeric dimension with an inclusive value range.
    Numeric {
        /// Smallest generated literal.
        lo: i64,
        /// Largest generated literal.
        hi: i64,
    },
    /// A categorical dimension; the value list is its cardinality.
    Categorical {
        /// Every distinct value predicates may mention.
        values: Vec<String>,
    },
    /// A free-text column filtered with `LIKE` prefix patterns.
    Text {
        /// Candidate `LIKE` patterns.
        patterns: Vec<String>,
    },
}

/// A generated column: name plus kind/domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column kind and value domain.
    pub kind: ColumnKind,
}

/// A generated schema: one fact/event table and its typed columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSchema {
    /// The fact (or event) table every session queries.
    pub table: String,
    /// Columns, with seeded types and cardinalities.
    pub columns: Vec<ColumnDef>,
}

impl CorpusSchema {
    fn generate(family: SchemaFamily, rng: &mut StdRng) -> CorpusSchema {
        match family {
            SchemaFamily::Star | SchemaFamily::Snowflake => {
                let table = pick(
                    rng,
                    if family == SchemaFamily::Star {
                        &["fact_sales", "fact_orders", "fact_shipments"]
                    } else {
                        &["sales_fact", "claims_fact", "policy_fact"]
                    },
                )
                .to_string();
                let mut columns = Vec::new();
                for name in pick_subset(rng, &["revenue", "units", "cost", "margin"], 2, 3) {
                    columns.push(ColumnDef {
                        name: name.to_string(),
                        kind: ColumnKind::Measure,
                    });
                }
                let dims: &[(&str, &[&str])] = &[
                    ("region", &["NA", "EU", "APAC", "LATAM", "MEA", "ANZ"]),
                    ("segment", &["consumer", "corporate", "startup", "public"]),
                    ("channel", &["web", "store", "partner", "phone"]),
                    ("category", &["tools", "toys", "books", "games", "food"]),
                ];
                for &(name, values) in pick_subset_ref(rng, dims, 2, 3) {
                    let cardinality = rng.gen_range(3usize..=values.len());
                    columns.push(ColumnDef {
                        name: name.to_string(),
                        kind: ColumnKind::Categorical {
                            values: values[..cardinality]
                                .iter()
                                .map(|v| v.to_string())
                                .collect(),
                        },
                    });
                }
                let numerics: &[(&str, i64, i64)] =
                    &[("year", 2015, 2025), ("quarter", 1, 4), ("price", 5, 500)];
                for &(name, lo, hi) in pick_subset_ref(rng, numerics, 1, 2) {
                    columns.push(ColumnDef {
                        name: name.to_string(),
                        kind: ColumnKind::Numeric { lo, hi },
                    });
                }
                CorpusSchema { table, columns }
            }
            SchemaFamily::Log => {
                let table = pick(rng, &["events", "requests", "spans"]).to_string();
                let mut columns = vec![ColumnDef {
                    name: pick(rng, &["latency_ms", "bytes", "duration_ms"]).to_string(),
                    kind: ColumnKind::Measure,
                }];
                let statuses: &[&str] = &["200", "301", "404", "500", "503"];
                let cardinality = rng.gen_range(3usize..=statuses.len());
                columns.push(ColumnDef {
                    name: "status".to_string(),
                    kind: ColumnKind::Categorical {
                        values: statuses[..cardinality]
                            .iter()
                            .map(|v| v.to_string())
                            .collect(),
                    },
                });
                columns.push(ColumnDef {
                    name: "method".to_string(),
                    kind: ColumnKind::Categorical {
                        values: ["GET", "POST", "PUT"]
                            .iter()
                            .map(|v| v.to_string())
                            .collect(),
                    },
                });
                columns.push(ColumnDef {
                    name: "path".to_string(),
                    kind: ColumnKind::Text {
                        patterns: ["/api/%", "/static/%", "/admin/%", "/v2/%"]
                            .iter()
                            .map(|v| v.to_string())
                            .collect(),
                    },
                });
                columns.push(ColumnDef {
                    name: "shard".to_string(),
                    kind: ColumnKind::Numeric { lo: 0, hi: 16 },
                });
                CorpusSchema { table, columns }
            }
        }
    }

    fn measures(&self) -> Vec<&ColumnDef> {
        self.columns
            .iter()
            .filter(|c| matches!(c.kind, ColumnKind::Measure))
            .collect()
    }

    fn categoricals(&self) -> Vec<&ColumnDef> {
        self.columns
            .iter()
            .filter(|c| matches!(c.kind, ColumnKind::Categorical { .. }))
            .collect()
    }

    fn numerics(&self) -> Vec<&ColumnDef> {
        self.columns
            .iter()
            .filter(|c| matches!(c.kind, ColumnKind::Numeric { .. }))
            .collect()
    }

    fn texts(&self) -> Vec<&ColumnDef> {
        self.columns
            .iter()
            .filter(|c| matches!(c.kind, ColumnKind::Text { .. }))
            .collect()
    }
}

/// A generated corpus scenario: spec, schema, SQL text and parsed log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusLog {
    /// The generating spec.
    pub spec: CorpusSpec,
    /// The generated schema.
    pub schema: CorpusSchema,
    /// SQL text of each session query, in drift order.
    pub sql: Vec<String>,
    /// Parsed ASTs, in drift order.
    pub queries: Vec<Ast>,
}

impl CorpusLog {
    /// Number of queries in the session.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the session is empty (never the case for generated specs).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// True if any query in the log contains a scalar subquery or a CTE — the dialect
    /// breadth acceptance check of the fuzz harness.
    pub fn uses_extended_dialect(&self) -> bool {
        self.sql
            .iter()
            .any(|s| s.contains("(select") || s.starts_with("with "))
    }

    /// Splice seeded noise into some of the session's queries: the malformed-input side
    /// of the fuzz ladder. Returns the degraded SQL log plus the (sorted) indices that
    /// were mutated. At least one query is always left untouched, so a triaged log keeps
    /// a healthy remainder; deterministic in `(self, op, seed)`.
    pub fn with_noise(&self, op: NoiseOp, seed: u64) -> (Vec<String>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E4F_4953 ^ self.spec.family.salt());
        let mut sql = self.sql.clone();
        let max_hits = self.len().saturating_sub(1).clamp(1, 3);
        let hits = rng.gen_range(1usize..=max_hits);
        // Fisher-Yates prefix: `hits` distinct target indices.
        let mut targets: Vec<usize> = (0..self.len()).collect();
        for i in 0..hits {
            let j = rng.gen_range(i..targets.len());
            targets.swap(i, j);
        }
        let mut mutated = targets[..hits].to_vec();
        mutated.sort_unstable();
        for &i in &mutated {
            sql[i] = apply_noise(&sql[i], op, rng.gen());
        }
        (sql, mutated)
    }
}

/// A seeded malformed-input mutation: each op models one way real query logs degrade
/// (truncated exports, binary garbage, fat-fingered keywords, lost punctuation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseOp {
    /// Cut the statement off at a random byte (a truncated log export).
    Truncate,
    /// Splice a short run of garbage bytes into the statement.
    ByteSplice,
    /// Misspell one SQL keyword.
    KeywordSwap,
    /// Drop one delimiter character (paren, comma, quote).
    DelimiterDrop,
}

impl NoiseOp {
    /// Every noise op, in the order `fuzzdiff --noise` sweeps them.
    pub const ALL: [NoiseOp; 4] = [
        NoiseOp::Truncate,
        NoiseOp::ByteSplice,
        NoiseOp::KeywordSwap,
        NoiseOp::DelimiterDrop,
    ];

    /// Short stable name used in noisy regression lines (`family:seed:op`).
    pub fn name(&self) -> &'static str {
        match self {
            NoiseOp::Truncate => "truncate",
            NoiseOp::ByteSplice => "splice",
            NoiseOp::KeywordSwap => "keyword",
            NoiseOp::DelimiterDrop => "delimiter",
        }
    }

    /// Parse an op name (as produced by [`NoiseOp::name`]).
    pub fn parse(name: &str) -> Option<NoiseOp> {
        Self::ALL.into_iter().find(|op| op.name() == name)
    }
}

impl std::fmt::Display for NoiseOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Apply one seeded noise mutation to a statement. Total: always returns *some* string
/// (possibly still parseable — the lenient front end decides), never panics, and is
/// deterministic in `(sql, op, seed)`.
pub fn apply_noise(sql: &str, op: NoiseOp, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    match op {
        NoiseOp::Truncate => {
            if sql.len() <= 1 {
                return String::new();
            }
            let mut cut = rng.gen_range(1..sql.len());
            while !sql.is_char_boundary(cut) {
                cut -= 1;
            }
            sql[..cut].to_string()
        }
        NoiseOp::ByteSplice => {
            let garbage = ["@@", "#?", "\u{1b}[2J", "%%~", "\u{0}\u{1}"];
            let g = garbage[rng.gen_range(0..garbage.len())];
            let mut at = rng.gen_range(0..=sql.len());
            while !sql.is_char_boundary(at) {
                at -= 1;
            }
            format!("{}{}{}", &sql[..at], g, &sql[at..])
        }
        NoiseOp::KeywordSwap => {
            const TYPOS: [(&str, &str); 6] = [
                ("select", "selct"),
                ("from", "form"),
                ("where", "wher"),
                ("group by", "gruop by"),
                ("order by", "ordre by"),
                ("between", "betwen"),
            ];
            let hits: Vec<(usize, &str, &str)> = TYPOS
                .iter()
                .filter_map(|&(kw, typo)| sql.find(kw).map(|at| (at, kw, typo)))
                .collect();
            if hits.is_empty() {
                // No keyword to damage (already-degraded input): splice instead so the
                // op stays total.
                return apply_noise(sql, NoiseOp::ByteSplice, seed ^ 1);
            }
            let (at, kw, typo) = hits[rng.gen_range(0..hits.len())];
            format!("{}{typo}{}", &sql[..at], &sql[at + kw.len()..])
        }
        NoiseOp::DelimiterDrop => {
            let delims: Vec<usize> = sql
                .char_indices()
                .filter(|&(_, c)| matches!(c, '(' | ')' | ',' | '\'' | ' '))
                .map(|(i, _)| i)
                .collect();
            if delims.is_empty() {
                return apply_noise(sql, NoiseOp::ByteSplice, seed ^ 1);
            }
            let at = delims[rng.gen_range(0..delims.len())];
            let mut out = sql.to_string();
            out.remove(at);
            out
        }
    }
}

/// One predicate of a drifting session query.
#[derive(Debug, Clone, PartialEq)]
enum Pred {
    /// `col BETWEEN lo AND hi`.
    Between { col: String, lo: i64, hi: i64 },
    /// `col <op> value` against a numeric literal.
    CmpNum {
        col: String,
        op: &'static str,
        value: i64,
    },
    /// `col = 'value'` against a categorical value.
    CmpStr { col: String, value: String },
    /// `col IN ('v1', ...)`.
    InList { col: String, values: Vec<String> },
    /// `col LIKE 'pattern'`.
    Like { col: String, pattern: String },
    /// `col <op> (SELECT agg(col2) FROM table)` — a scalar-subquery benchmark predicate.
    CmpSubquery {
        col: String,
        op: &'static str,
        agg: &'static str,
        inner_col: String,
    },
    /// `a <arith> b > v` — expression-level arithmetic in the predicate.
    Arith {
        a: String,
        arith: &'static str,
        b: String,
        cmp: &'static str,
        value: i64,
    },
}

impl Pred {
    fn render(&self, table: &str) -> String {
        match self {
            Pred::Between { col, lo, hi } => format!("{col} between {lo} and {hi}"),
            Pred::CmpNum { col, op, value } => format!("{col} {op} {value}"),
            Pred::CmpStr { col, value } => format!("{col} = '{value}'"),
            Pred::InList { col, values } => {
                let list: Vec<String> = values.iter().map(|v| format!("'{v}'")).collect();
                format!("{col} in ({})", list.join(", "))
            }
            Pred::Like { col, pattern } => format!("{col} like '{pattern}'"),
            Pred::CmpSubquery {
                col,
                op,
                agg,
                inner_col,
            } => format!("{col} {op} (select {agg}({inner_col}) from {table})"),
            Pred::Arith {
                a,
                arith,
                b,
                cmp,
                value,
            } => format!("{a} {arith} {b} {cmp} {value}"),
        }
    }
}

/// Structured draft of one session query; rendering it always yields parseable SQL.
#[derive(Debug, Clone)]
struct Draft {
    /// `WITH <name> AS (SELECT * FROM <table> WHERE <pred>)` wrapper; the body then
    /// selects from `<name>` instead of the fact table.
    cte: Option<(String, Pred)>,
    /// Aggregate projection items, e.g. `sum(revenue)`.
    aggs: Vec<(String, String)>, // (agg fn, measure column); empty agg = count(*)
    /// Group-by columns (also projected when non-empty).
    group: Vec<String>,
    /// Plain projected columns used when there is no group-by.
    plain: Vec<String>,
    /// WHERE predicates, AND-joined.
    preds: Vec<Pred>,
    /// TOP-N row limit.
    top: Option<i64>,
    /// ORDER BY column + descending flag.
    order: Option<(String, bool)>,
}

const AGGS: [&str; 4] = ["sum", "avg", "min", "max"];
const CMP_OPS: [&str; 4] = [">", "<", ">=", "<="];
const ARITH_OPS: [&str; 3] = ["+", "-", "*"];

impl Draft {
    fn initial(family: SchemaFamily, schema: &CorpusSchema, rng: &mut StdRng) -> Draft {
        let measures = schema.measures();
        let cats = schema.categoricals();
        let measure = pick(rng, &measures).name.clone();
        let mut draft = Draft {
            cte: None,
            aggs: vec![(pick(rng, &AGGS).to_string(), measure)],
            group: Vec::new(),
            plain: schema
                .columns
                .iter()
                .take(2)
                .map(|c| c.name.clone())
                .collect(),
            preds: Vec::new(),
            top: None,
            order: None,
        };
        // Start with 1-2 predicates so the very first difftree already has choices.
        let n_preds = rng.gen_range(1usize..=2);
        for _ in 0..n_preds {
            let p = random_pred(family, schema, rng);
            draft.preds.push(p);
        }
        // Family flavour of the opening query. Drift may later toggle the CTE on or off
        // mid-session: mixed `WITH`/plain roots are factored per-label by `Any2All`'s
        // subgroup bindings, so the difftree keeps its structure (the snowflake:268
        // regression pins this).
        match family {
            SchemaFamily::Star => {
                if rng.gen_bool(0.15) {
                    draft.cte = Some(("base".to_string(), random_plain_pred(schema, rng)));
                }
                if !cats.is_empty() && rng.gen_bool(0.7) {
                    draft.group = vec![pick(rng, &cats).name.clone()];
                }
                if rng.gen_bool(0.4) {
                    draft.preds.push(subquery_pred(schema, rng));
                }
            }
            SchemaFamily::Snowflake => {
                if rng.gen_bool(0.6) {
                    draft.cte = Some(("base".to_string(), random_plain_pred(schema, rng)));
                }
                if !cats.is_empty() && rng.gen_bool(0.5) {
                    draft.group = vec![pick(rng, &cats).name.clone()];
                }
                if rng.gen_bool(0.3) {
                    draft.preds.push(subquery_pred(schema, rng));
                }
            }
            SchemaFamily::Log => {
                draft.top = Some(*pick(rng, &[10, 50, 100]));
                draft.order = Some((pick(rng, &schema.measures()).name.clone(), true));
                if rng.gen_bool(0.25) {
                    draft.preds.push(subquery_pred(schema, rng));
                }
            }
        }
        draft
    }

    /// Apply one drift step: 1-2 small mutations of the kind an analyst's next query makes.
    fn mutate(&mut self, family: SchemaFamily, schema: &CorpusSchema, rng: &mut StdRng) {
        let n = if rng.gen_bool(0.3) { 2 } else { 1 };
        for _ in 0..n {
            match rng.gen_range(0u32..10) {
                // Most common: nudge a literal in an existing predicate.
                0..=2 => self.tweak_literal(schema, rng),
                3 => {
                    // Add a predicate (bounded) or drop one.
                    if self.preds.len() < 4 && rng.gen_bool(0.7) {
                        self.preds.push(random_pred(family, schema, rng));
                    } else if self.preds.len() > 1 {
                        let i = rng.gen_range(0..self.preds.len());
                        self.preds.remove(i);
                    }
                }
                4 => {
                    // Swap an aggregate function, or the aggregated measure.
                    if let Some(i) = index_of(rng, &self.aggs) {
                        if rng.gen_bool(0.5) {
                            self.aggs[i].0 = pick(rng, &AGGS).to_string();
                        } else {
                            self.aggs[i].1 = pick(rng, &schema.measures()).name.clone();
                        }
                    }
                }
                5 => {
                    // Add/remove an aggregate item (count(*) enters as the empty fn).
                    if self.aggs.len() < 3 && rng.gen_bool(0.6) {
                        if rng.gen_bool(0.3) {
                            self.aggs.push((String::new(), String::new()));
                        } else {
                            self.aggs.push((
                                pick(rng, &AGGS).to_string(),
                                pick(rng, &schema.measures()).name.clone(),
                            ));
                        }
                    } else if self.aggs.len() > 1 {
                        self.aggs.pop();
                    }
                }
                6 => {
                    // Toggle/extend the group-by.
                    let cats = schema.categoricals();
                    if cats.is_empty() {
                        continue;
                    }
                    let candidate = pick(rng, &cats).name.clone();
                    if let Some(pos) = self.group.iter().position(|g| g == &candidate) {
                        self.group.remove(pos);
                    } else if self.group.len() < 2 {
                        self.group.push(candidate);
                    }
                }
                7 => {
                    // Change the row limit.
                    self.top = match self.top {
                        None => Some(*pick(rng, &[10, 50, 100, 1000])),
                        Some(_) if rng.gen_bool(0.3) => None,
                        Some(_) => Some(*pick(rng, &[10, 50, 100, 1000])),
                    };
                }
                8 => {
                    // Toggle ordering.
                    self.order = match self.order.take() {
                        None => Some((
                            pick(rng, &schema.measures()).name.clone(),
                            rng.gen_bool(0.7),
                        )),
                        Some(_) => None,
                    };
                }
                _ => {
                    // Dialect drift: re-aim, drop or introduce the session's CTE (mixed
                    // `WITH`/plain roots factor cleanly, see `initial`), or toggle the
                    // scalar-subquery benchmark predicate.
                    let cte_p = if family == SchemaFamily::Snowflake {
                        0.6
                    } else {
                        0.15
                    };
                    if rng.gen_bool(cte_p) {
                        self.cte = match self.cte.take() {
                            Some((name, _)) if rng.gen_bool(0.6) => {
                                Some((name, random_plain_pred(schema, rng)))
                            }
                            Some(_) => None,
                            None => Some(("base".to_string(), random_plain_pred(schema, rng))),
                        };
                    } else if self
                        .preds
                        .iter()
                        .any(|p| matches!(p, Pred::CmpSubquery { .. }))
                    {
                        self.preds
                            .retain(|p| !matches!(p, Pred::CmpSubquery { .. }));
                    } else if self.preds.len() < 4 {
                        self.preds.push(subquery_pred(schema, rng));
                    }
                }
            }
        }
        if self.preds.is_empty() {
            self.preds.push(random_pred(family, schema, rng));
        }
    }

    fn tweak_literal(&mut self, schema: &CorpusSchema, rng: &mut StdRng) {
        if self.preds.is_empty() {
            return;
        }
        let i = rng.gen_range(0..self.preds.len());
        match &mut self.preds[i] {
            Pred::Between { lo, hi, .. } => {
                if rng.gen_bool(0.5) {
                    *lo += rng.gen_range(-5i64..=5);
                } else {
                    *hi += rng.gen_range(-5i64..=5);
                }
                if *lo > *hi {
                    std::mem::swap(lo, hi);
                }
            }
            Pred::CmpNum { value, .. } | Pred::Arith { value, .. } => {
                *value += rng.gen_range(-10i64..=10);
            }
            Pred::CmpStr { col, value } => {
                if let Some(values) = categorical_values(schema, col) {
                    *value = pick(rng, &values).clone();
                }
            }
            Pred::InList { col, values } => {
                if let Some(domain) = categorical_values(schema, col) {
                    let want = rng.gen_range(1usize..=domain.len().min(3));
                    *values = domain[..want].to_vec();
                }
            }
            Pred::Like { col, pattern } => {
                if let Some(patterns) = text_patterns(schema, col) {
                    *pattern = pick(rng, &patterns).clone();
                }
            }
            Pred::CmpSubquery { op, .. } => {
                *op = *pick(rng, &CMP_OPS);
            }
        }
    }

    fn render(&self, schema: &CorpusSchema) -> String {
        let mut out = String::new();
        let from_table = match &self.cte {
            Some((name, pred)) => {
                out.push_str(&format!(
                    "with {name} as (select * from {} where {}) ",
                    schema.table,
                    pred.render(&schema.table)
                ));
                name.clone()
            }
            None => schema.table.clone(),
        };
        out.push_str("select ");
        if let Some(n) = self.top {
            out.push_str(&format!("top {n} "));
        }
        let mut items: Vec<String> = Vec::new();
        if self.group.is_empty() {
            items.extend(self.plain.iter().cloned());
        } else {
            items.extend(self.group.iter().cloned());
        }
        for (agg, measure) in &self.aggs {
            if agg.is_empty() {
                items.push("count(*)".to_string());
            } else {
                items.push(format!("{agg}({measure})"));
            }
        }
        out.push_str(&items.join(", "));
        out.push_str(&format!(" from {from_table}"));
        if !self.preds.is_empty() {
            let rendered: Vec<String> =
                self.preds.iter().map(|p| p.render(&schema.table)).collect();
            out.push_str(&format!(" where {}", rendered.join(" and ")));
        }
        if !self.group.is_empty() {
            out.push_str(&format!(" group by {}", self.group.join(", ")));
        }
        if let Some((col, desc)) = &self.order {
            out.push_str(&format!(
                " order by {col}{}",
                if *desc { " desc" } else { "" }
            ));
        }
        out
    }
}

fn categorical_values(schema: &CorpusSchema, col: &str) -> Option<Vec<String>> {
    schema.columns.iter().find_map(|c| match &c.kind {
        ColumnKind::Categorical { values } if c.name == col => Some(values.clone()),
        _ => None,
    })
}

fn text_patterns(schema: &CorpusSchema, col: &str) -> Option<Vec<String>> {
    schema.columns.iter().find_map(|c| match &c.kind {
        ColumnKind::Text { patterns } if c.name == col => Some(patterns.clone()),
        _ => None,
    })
}

/// A predicate over the schema's dimension columns (never a subquery — usable in CTEs).
fn random_plain_pred(schema: &CorpusSchema, rng: &mut StdRng) -> Pred {
    let cats = schema.categoricals();
    let nums = schema.numerics();
    let texts = schema.texts();
    let mut options: Vec<u8> = Vec::new();
    if !cats.is_empty() {
        options.push(0);
        options.push(1);
    }
    if !nums.is_empty() {
        options.push(2);
        options.push(3);
    }
    if !texts.is_empty() {
        options.push(4);
    }
    match *pick(rng, &options) {
        0 => {
            let col = pick(rng, &cats);
            let values = categorical_values(schema, &col.name).unwrap_or_default();
            Pred::CmpStr {
                col: col.name.clone(),
                value: pick(rng, &values).clone(),
            }
        }
        1 => {
            let col = pick(rng, &cats);
            let domain = categorical_values(schema, &col.name).unwrap_or_default();
            let want = rng.gen_range(1usize..=domain.len().min(3));
            Pred::InList {
                col: col.name.clone(),
                values: domain[..want].to_vec(),
            }
        }
        2 => {
            let col = pick(rng, &nums);
            let (lo_bound, hi_bound) = match col.kind {
                ColumnKind::Numeric { lo, hi } => (lo, hi),
                _ => (0, 100),
            };
            let lo = rng.gen_range(lo_bound..=hi_bound);
            let hi = rng.gen_range(lo..=hi_bound);
            Pred::Between {
                col: col.name.clone(),
                lo,
                hi,
            }
        }
        3 => {
            let col = pick(rng, &nums);
            let (lo_bound, hi_bound) = match col.kind {
                ColumnKind::Numeric { lo, hi } => (lo, hi),
                _ => (0, 100),
            };
            Pred::CmpNum {
                col: col.name.clone(),
                op: pick_str(rng, &CMP_OPS),
                value: rng.gen_range(lo_bound..=hi_bound),
            }
        }
        _ => {
            let col = pick(rng, &texts);
            let patterns = text_patterns(schema, &col.name).unwrap_or_default();
            Pred::Like {
                col: col.name.clone(),
                pattern: pick(rng, &patterns).clone(),
            }
        }
    }
}

/// Any predicate, including measure arithmetic (but not subqueries — those are added by
/// the family-specific toggles so their frequency is controlled).
fn random_pred(family: SchemaFamily, schema: &CorpusSchema, rng: &mut StdRng) -> Pred {
    let measures = schema.measures();
    if measures.len() >= 2
        && rng.gen_bool(if family == SchemaFamily::Log {
            0.1
        } else {
            0.2
        })
    {
        let a = pick(rng, &measures).name.clone();
        let b = pick(rng, &measures).name.clone();
        return Pred::Arith {
            a,
            arith: pick_str(rng, &ARITH_OPS),
            b,
            cmp: pick_str(rng, &CMP_OPS),
            value: rng.gen_range(0i64..100),
        };
    }
    random_plain_pred(schema, rng)
}

/// A scalar-subquery benchmark predicate: `measure > (select avg(measure) from fact)`.
fn subquery_pred(schema: &CorpusSchema, rng: &mut StdRng) -> Pred {
    let measures = schema.measures();
    let col = pick(rng, &measures).name.clone();
    let inner = pick(rng, &measures).name.clone();
    Pred::CmpSubquery {
        col,
        op: pick_str(rng, &CMP_OPS),
        agg: pick_str(rng, &["avg", "min", "max"]),
        inner_col: inner,
    }
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    assert!(!items.is_empty(), "pick from empty slice");
    &items[rng.gen_range(0..items.len())]
}

/// `pick` over a static string set, returning the string itself rather than a `&&str`
/// (which trips up inference in struct-literal positions).
fn pick_str(rng: &mut StdRng, items: &[&'static str]) -> &'static str {
    assert!(!items.is_empty(), "pick from empty slice");
    items[rng.gen_range(0..items.len())]
}

fn index_of<T>(rng: &mut StdRng, items: &[T]) -> Option<usize> {
    if items.is_empty() {
        None
    } else {
        Some(rng.gen_range(0..items.len()))
    }
}

/// Pick a random sub-slice prefix of `count in lo..=hi` items starting at a random offset.
fn pick_subset<'a>(rng: &mut StdRng, items: &'a [&'a str], lo: usize, hi: usize) -> Vec<&'a str> {
    let count = rng.gen_range(lo..=hi.min(items.len()));
    let start = rng.gen_range(0..=(items.len() - count));
    items[start..start + count].to_vec()
}

/// [`pick_subset`] over arbitrary element types, returning references.
fn pick_subset_ref<'a, T>(rng: &mut StdRng, items: &'a [T], lo: usize, hi: usize) -> &'a [T] {
    let count = rng.gen_range(lo..=hi.min(items.len()));
    let start = rng.gen_range(0..=(items.len() - count));
    &items[start..start + count]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_spec() {
        for family in SchemaFamily::ALL {
            let a = CorpusSpec::new(family, 17).generate();
            let b = CorpusSpec::new(family, 17).generate();
            let c = CorpusSpec::new(family, 18).generate();
            assert_eq!(a.sql, b.sql, "{family} not deterministic");
            assert_ne!(a.sql, c.sql, "{family} ignores the seed");
        }
    }

    #[test]
    fn appends_continue_the_exact_drift_stream() {
        for family in SchemaFamily::ALL {
            for seed in [0u64, 9, 33] {
                let spec = CorpusSpec::new(family, seed);
                let base = spec.generate();
                let (log, appended) = spec.generate_with_appends(4);
                // The base log is bit-identical whether or not appends are requested.
                assert_eq!(log.sql, base.sql, "{family}:{seed} base log drifted");
                assert_eq!(appended.len(), 4);
                // Appends keep drifting: each differs from its predecessor and parses.
                let mut previous = base.sql.last().expect("nonempty").clone();
                for sql in &appended {
                    assert_ne!(sql, &previous, "{family}:{seed} append was a no-op");
                    parse_query(sql).unwrap_or_else(|e| {
                        panic!("{family}:{seed} appended unparseable SQL `{sql}`: {e}")
                    });
                    previous = sql.clone();
                }
            }
        }
    }

    #[test]
    fn families_differ_at_equal_seed() {
        let star = CorpusSpec::new(SchemaFamily::Star, 5).generate();
        let log = CorpusSpec::new(SchemaFamily::Log, 5).generate();
        assert_ne!(star.sql, log.sql);
    }

    #[test]
    fn sessions_have_bounded_length_and_parse() {
        for family in SchemaFamily::ALL {
            for seed in 0..20 {
                let log = CorpusSpec::new(family, seed).generate();
                assert!((6..=12).contains(&log.len()), "{family}:{seed}");
                assert_eq!(log.sql.len(), log.queries.len());
            }
        }
    }

    #[test]
    fn consecutive_queries_always_differ() {
        for family in SchemaFamily::ALL {
            for seed in 0..10 {
                let log = CorpusSpec::new(family, seed).generate();
                for pair in log.sql.windows(2) {
                    assert_ne!(pair[0], pair[1], "{family}:{seed} drift step was a no-op");
                }
            }
        }
    }

    #[test]
    fn extended_dialect_appears_across_the_corpus() {
        // Sweep a seed range per family: subqueries/CTEs must show up somewhere.
        for family in SchemaFamily::ALL {
            let hit = (0..30).any(|seed| {
                CorpusSpec::new(family, seed)
                    .generate()
                    .uses_extended_dialect()
            });
            assert!(hit, "{family}: no subquery or CTE in 30 seeds");
        }
        // Snowflake specifically is CTE-heavy.
        let cte_hit = (0..10).any(|seed| {
            CorpusSpec::new(SchemaFamily::Snowflake, seed)
                .generate()
                .sql
                .iter()
                .any(|s| s.starts_with("with "))
        });
        assert!(cte_hit, "snowflake: no CTE in 10 seeds");
    }

    #[test]
    fn scenario_names_round_trip() {
        let spec = CorpusSpec::new(SchemaFamily::Snowflake, 42);
        assert_eq!(spec.scenario_name(), "corpus:snowflake:42");
        assert_eq!(CorpusSpec::parse_name("corpus:snowflake:42"), Some(spec));
        assert_eq!(CorpusSpec::parse_name("corpus:nope:42"), None);
        assert_eq!(CorpusSpec::parse_name("corpus:star:notanumber"), None);
        assert_eq!(CorpusSpec::parse_name("fig6a-wide"), None);
    }

    #[test]
    fn drift_mixes_cte_and_plain_roots_somewhere() {
        // The relaxed drift must actually produce sessions that mix `WITH`-rooted and
        // plain-rooted queries — the shape the Any2All subgroup factoring exists for.
        let mixed = (0..60).any(|seed| {
            let log = CorpusSpec::new(SchemaFamily::Snowflake, seed).generate();
            let with = log.sql.iter().filter(|s| s.starts_with("with ")).count();
            with > 0 && with < log.len()
        });
        assert!(mixed, "no mixed-root snowflake session in 60 seeds");
    }

    #[test]
    fn noise_ops_are_deterministic_total_and_named() {
        for op in NoiseOp::ALL {
            assert_eq!(NoiseOp::parse(op.name()), Some(op));
            for seed in 0..40u64 {
                let sql = "select region, sum(revenue) from fact_sales \
                           where region = 'EU' and year between 2018 and 2020 group by region";
                let a = apply_noise(sql, op, seed);
                let b = apply_noise(sql, op, seed);
                assert_eq!(a, b, "{op}:{seed} not deterministic");
                assert_ne!(a, sql, "{op}:{seed} was a no-op");
            }
            // Total on degenerate inputs too.
            for degenerate in ["", "x", "@@", "??"] {
                let _ = apply_noise(degenerate, op, 3);
            }
        }
        assert_eq!(NoiseOp::parse("nope"), None);
    }

    #[test]
    fn noisy_sessions_keep_a_healthy_remainder() {
        for family in SchemaFamily::ALL {
            for seed in 0..5 {
                let log = CorpusSpec::new(family, seed).generate();
                for op in NoiseOp::ALL {
                    let (sql, mutated) = log.with_noise(op, seed * 31 + 7);
                    let (again, mutated_again) = log.with_noise(op, seed * 31 + 7);
                    assert_eq!((&sql, &mutated), (&again, &mutated_again));
                    assert_eq!(sql.len(), log.len());
                    assert!(!mutated.is_empty() && mutated.len() < log.len());
                    for (i, s) in sql.iter().enumerate() {
                        let touched = mutated.contains(&i);
                        assert_eq!(s != &log.sql[i], touched, "{family}:{seed}:{op} slot {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn serde_round_trip_of_spec() {
        let spec = CorpusSpec::new(SchemaFamily::Log, 7);
        let json = serde_json::to_string(&spec).unwrap();
        let back: CorpusSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
