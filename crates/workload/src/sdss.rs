//! The SDSS-derived query log of the paper's Listing 1.
//!
//! The paper prints the first two queries in full and notes that "All queries have the same
//! WHERE clause structure" — four `BETWEEN` predicates over the photometric bands
//! `u`, `g`, `r`, `i`. Queries vary in:
//!
//! * the projected expression (`objid` vs `count(*)`),
//! * the table (`stars`, `galaxies`, `quasars`),
//! * the presence and value of the `TOP` clause (10 / 100 / 1000 / absent), and
//! * the numeric bounds of the `BETWEEN` predicates (the paper prints differing bounds only
//!   for query 2; the remaining queries use the default 0..30 window, matching the remark
//!   that e.g. queries 6-8 share the same `WHERE` clauses).

use mctsui_sql::{parse_query, Ast};

/// The ten queries of Listing 1 as SQL text, in log order.
pub fn sdss_listing1_sql() -> Vec<String> {
    vec![
        // 1
        "select top 10 objid from stars where u between 0 and 30 and g between 0 and 30 \
         and r between 0 and 30 and i between 0 and 30"
            .to_string(),
        // 2
        "select top 100 objid from galaxies where u between 1 and 29 and g between 10 and 30 \
         and r between 9 and 30 and i between 3 and 28"
            .to_string(),
        // 3
        "select top 1000 objid from quasars where u between 0 and 30 and g between 0 and 30 \
         and r between 0 and 30 and i between 0 and 30"
            .to_string(),
        // 4
        "select count(*) from stars where u between 0 and 30 and g between 0 and 30 \
         and r between 0 and 30 and i between 0 and 30"
            .to_string(),
        // 5
        "select objid from galaxies where u between 0 and 30 and g between 0 and 30 \
         and r between 0 and 30 and i between 0 and 30"
            .to_string(),
        // 6
        "select top 10 objid from quasars where u between 0 and 30 and g between 0 and 30 \
         and r between 0 and 30 and i between 0 and 30"
            .to_string(),
        // 7
        "select top 100 objid from stars where u between 0 and 30 and g between 0 and 30 \
         and r between 0 and 30 and i between 0 and 30"
            .to_string(),
        // 8
        "select top 1000 objid from galaxies where u between 0 and 30 and g between 0 and 30 \
         and r between 0 and 30 and i between 0 and 30"
            .to_string(),
        // 9
        "select count(*) from quasars where u between 0 and 30 and g between 0 and 30 \
         and r between 0 and 30 and i between 0 and 30"
            .to_string(),
        // 10
        "select objid from stars where u between 0 and 30 and g between 0 and 30 \
         and r between 0 and 30 and i between 0 and 30"
            .to_string(),
    ]
}

/// The ten queries of Listing 1, parsed.
pub fn sdss_listing1() -> Vec<Ast> {
    sdss_listing1_sql()
        .iter()
        .map(|sql| parse_query(sql).expect("embedded SDSS query parses"))
        .collect()
}

/// A 1-based inclusive slice of Listing 1, e.g. `sdss_subset(6, 8)` is the three-query log of
/// Figure 6(c).
pub fn sdss_subset(from: usize, to: usize) -> Vec<Ast> {
    let all = sdss_listing1();
    let from = from.clamp(1, all.len());
    let to = to.clamp(from, all.len());
    all[from - 1..to].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctsui_sql::{print_query, NodeKind, QueryView};

    #[test]
    fn listing1_has_ten_parseable_queries() {
        let log = sdss_listing1();
        assert_eq!(log.len(), 10);
        for q in &log {
            assert_eq!(q.kind(), NodeKind::Select);
        }
    }

    #[test]
    fn queries_round_trip_through_the_printer() {
        for (i, q) in sdss_listing1().iter().enumerate() {
            let printed = print_query(q);
            let reparsed = parse_query(&printed).unwrap();
            assert_eq!(&reparsed, q, "query {} failed to round trip", i + 1);
        }
    }

    #[test]
    fn every_query_has_the_same_where_structure() {
        // "All queries have the same WHERE clause structure": four BETWEEN predicates over
        // u, g, r, i.
        for q in sdss_listing1() {
            let view = QueryView::new(&q).unwrap();
            let preds = view.predicates();
            assert_eq!(preds.len(), 4);
            let cols: Vec<&str> = preds.iter().map(|(c, _, _)| c.as_str()).collect();
            assert_eq!(cols, vec!["u", "g", "r", "i"]);
            assert!(preds.iter().all(|(_, op, _)| op == "BETWEEN"));
        }
    }

    #[test]
    fn queries_vary_in_table_projection_and_top() {
        let log = sdss_listing1();
        let views: Vec<QueryView> = log.iter().map(|q| QueryView::new(q).unwrap()).collect();

        let mut tables: Vec<&str> = views.iter().flat_map(|v| v.tables()).collect();
        tables.sort();
        tables.dedup();
        assert_eq!(tables, vec!["galaxies", "quasars", "stars"]);

        let tops: Vec<Option<i64>> = views.iter().map(|v| v.top_n()).collect();
        assert!(tops.contains(&Some(10)));
        assert!(tops.contains(&Some(100)));
        assert!(tops.contains(&Some(1000)));
        assert!(
            tops.contains(&None),
            "queries 4, 5, 9, 10 have no TOP clause"
        );

        let count_queries = views
            .iter()
            .filter(|v| v.projections().iter().any(|p| p.contains("count")))
            .count();
        assert_eq!(count_queries, 2, "queries 4 and 9 are count(*) queries");
    }

    #[test]
    fn subset_six_to_eight_matches_figure_6c() {
        // Figure 6(c): queries 6-8 share projection and WHERE; only TOP-N varies.
        let subset = sdss_subset(6, 8);
        assert_eq!(subset.len(), 3);
        let tops: Vec<Option<i64>> = subset
            .iter()
            .map(|q| QueryView::new(q).unwrap().top_n())
            .collect();
        assert_eq!(tops, vec![Some(10), Some(100), Some(1000)]);
        for q in &subset {
            let v = QueryView::new(q).unwrap();
            assert_eq!(v.projections(), vec!["objid"]);
        }
    }

    #[test]
    fn subset_bounds_are_clamped() {
        assert_eq!(sdss_subset(1, 100).len(), 10);
        assert_eq!(sdss_subset(9, 9).len(), 1);
        assert_eq!(sdss_subset(0, 2).len(), 2);
    }
}
