//! Query-log workloads for interface generation experiments.
//!
//! The paper evaluates on a 10-query log derived from the Sloan Digital Sky Survey (SDSS)
//! query log (its Listing 1). That log is embedded here verbatim ([`sdss`]), along with
//! parameterised synthetic log generators used by the scaling and ablation experiments
//! ([`synthetic`]), the named experiment scenarios of Figure 6 ([`scenario`]) and the
//! generated scenario corpus behind the differential fuzz harness ([`corpus`]) — seeded
//! schema families whose session logs drift query-by-query and are addressable anywhere a
//! scenario name is accepted as `corpus:<family>:<seed>`.
//!
//! **Substitution note (documented in DESIGN.md):** the live SDSS database and its full query
//! log are not available offline; the paper prints the log it uses, so we reproduce exactly
//! those queries and generate synthetic SDSS-style logs for experiments that need more
//! queries than Listing 1 contains.

pub mod corpus;
pub mod scenario;
pub mod sdss;
pub mod synthetic;

pub use corpus::{apply_noise, CorpusLog, CorpusSchema, CorpusSpec, NoiseOp, SchemaFamily};
pub use scenario::{Scenario, ScenarioId};
pub use sdss::{sdss_listing1, sdss_listing1_sql, sdss_subset};
pub use synthetic::{LogSpec, SyntheticLog};
