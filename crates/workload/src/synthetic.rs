//! Synthetic query-log generators.
//!
//! The scaling and ablation experiments need logs larger (and more varied) than the ten
//! queries of Listing 1. [`LogSpec`] describes a template-structured analysis session — a
//! fixed query skeleton whose table, projection, row limit, predicate bounds and optional
//! clauses are perturbed from query to query — which is exactly the usage pattern the paper
//! assumes ("the structural differences between the queries are representative of the types
//! of changes the user wishes to express interactively").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mctsui_sql::{parse_query, Ast};

/// Specification of a synthetic query log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogSpec {
    /// Number of queries to generate.
    pub queries: usize,
    /// Candidate tables (the FROM clause picks one per query).
    pub tables: Vec<String>,
    /// Candidate projection expressions.
    pub projections: Vec<String>,
    /// Numeric filter columns; each query filters a random subset with BETWEEN predicates.
    pub filter_columns: Vec<String>,
    /// Candidate TOP-N values; `None` entries mean "no TOP clause".
    pub top_values: Vec<Option<i64>>,
    /// Probability (0..=1) that a query keeps the WHERE clause at all.
    pub where_probability: f64,
    /// Probability (0..=1) that an individual filter column appears in a query's WHERE clause.
    pub filter_probability: f64,
    /// Candidate categorical predicate (column, values); applied with the same probability as
    /// numeric filters when present.
    pub categorical_filter: Option<(String, Vec<String>)>,
    /// RNG seed; the same spec always generates the same log.
    pub seed: u64,
}

impl LogSpec {
    /// An SDSS-flavoured spec: same vocabulary as Listing 1 but with a configurable number of
    /// queries. Used by the scaling experiments (5-40 queries).
    pub fn sdss_style(queries: usize, seed: u64) -> Self {
        Self {
            queries,
            tables: vec!["stars".into(), "galaxies".into(), "quasars".into()],
            projections: vec!["objid".into(), "count(*)".into()],
            filter_columns: vec!["u".into(), "g".into(), "r".into(), "i".into()],
            top_values: vec![Some(10), Some(100), Some(1000), None],
            where_probability: 0.9,
            filter_probability: 0.85,
            categorical_filter: None,
            seed,
        }
    }

    /// A business-intelligence-flavoured spec over a flight-delay table, used by the
    /// `flight_delays` example: the kind of dashboard queries the paper's introduction
    /// motivates (repeatedly slicing the same measure by different filters).
    pub fn flights_style(queries: usize, seed: u64) -> Self {
        Self {
            queries,
            tables: vec!["flights".into()],
            projections: vec![
                "avg(dep_delay)".into(),
                "count(*)".into(),
                "avg(arr_delay)".into(),
            ],
            filter_columns: vec!["month".into(), "distance".into()],
            top_values: vec![None, Some(10), Some(50)],
            where_probability: 0.95,
            filter_probability: 0.7,
            categorical_filter: Some((
                "carrier".into(),
                vec!["AA".into(), "DL".into(), "UA".into(), "WN".into()],
            )),
            seed,
        }
    }

    /// Generate the log described by this spec.
    pub fn generate(&self) -> SyntheticLog {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut sql = Vec::with_capacity(self.queries);
        for _ in 0..self.queries {
            sql.push(self.generate_one(&mut rng));
        }
        let queries = sql
            .iter()
            .map(|s| parse_query(s).expect("synthetic query parses"))
            .collect();
        SyntheticLog {
            spec: self.clone(),
            sql,
            queries,
        }
    }

    fn generate_one(&self, rng: &mut StdRng) -> String {
        let mut out = String::from("select ");

        let top = self.top_values[rng.gen_range(0..self.top_values.len().max(1))];
        if let Some(n) = top {
            out.push_str(&format!("top {n} "));
        }

        let projection = &self.projections[rng.gen_range(0..self.projections.len().max(1))];
        out.push_str(projection);

        let table = &self.tables[rng.gen_range(0..self.tables.len().max(1))];
        out.push_str(&format!(" from {table}"));

        if rng.gen_bool(self.where_probability.clamp(0.0, 1.0)) {
            let mut predicates = Vec::new();
            for col in &self.filter_columns {
                if rng.gen_bool(self.filter_probability.clamp(0.0, 1.0)) {
                    let lo = rng.gen_range(0..15);
                    let hi = rng.gen_range(16..40);
                    predicates.push(format!("{col} between {lo} and {hi}"));
                }
            }
            if let Some((col, values)) = &self.categorical_filter {
                if rng.gen_bool(self.filter_probability.clamp(0.0, 1.0)) && !values.is_empty() {
                    let v = &values[rng.gen_range(0..values.len())];
                    predicates.push(format!("{col} = '{v}'"));
                }
            }
            if !predicates.is_empty() {
                out.push_str(" where ");
                out.push_str(&predicates.join(" and "));
            }
        }
        out
    }
}

/// A generated log: the spec it came from, the SQL text and the parsed ASTs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticLog {
    /// The generating spec.
    pub spec: LogSpec,
    /// SQL text of each query, in log order.
    pub sql: Vec<String>,
    /// Parsed ASTs, in log order.
    pub queries: Vec<Ast>,
}

impl SyntheticLog {
    /// The parsed queries.
    pub fn queries(&self) -> &[Ast] {
        &self.queries
    }

    /// Number of queries in the log.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctsui_sql::QueryView;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = LogSpec::sdss_style(12, 7).generate();
        let b = LogSpec::sdss_style(12, 7).generate();
        let c = LogSpec::sdss_style(12, 8).generate();
        assert_eq!(a.sql, b.sql);
        assert_ne!(a.sql, c.sql);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn generated_queries_stay_in_vocabulary() {
        let log = LogSpec::sdss_style(25, 3).generate();
        for q in log.queries() {
            let v = QueryView::new(q).unwrap();
            let tables = v.tables();
            assert_eq!(tables.len(), 1);
            assert!(["stars", "galaxies", "quasars"].contains(&tables[0]));
            if let Some(top) = v.top_n() {
                assert!([10, 100, 1000].contains(&top));
            }
            for (col, op, _) in v.predicates() {
                assert!(["u", "g", "r", "i"].contains(&col.as_str()));
                assert_eq!(op, "BETWEEN");
            }
        }
    }

    #[test]
    fn flights_spec_produces_bi_style_queries() {
        let log = LogSpec::flights_style(15, 11).generate();
        assert_eq!(log.len(), 15);
        let mut saw_carrier_filter = false;
        let mut saw_aggregate = false;
        for q in log.queries() {
            let v = QueryView::new(q).unwrap();
            assert_eq!(v.tables(), vec!["flights"]);
            if v.projections()
                .iter()
                .any(|p| p.contains("avg(") || p.contains("count("))
            {
                saw_aggregate = true;
            }
            if v.predicates().iter().any(|(c, _, _)| c == "carrier") {
                saw_carrier_filter = true;
            }
        }
        assert!(saw_aggregate);
        assert!(
            saw_carrier_filter,
            "with 15 queries a carrier filter should appear"
        );
    }

    #[test]
    fn where_probability_zero_removes_predicates() {
        let mut spec = LogSpec::sdss_style(10, 1);
        spec.where_probability = 0.0;
        let log = spec.generate();
        for q in log.queries() {
            assert!(QueryView::new(q).unwrap().predicates().is_empty());
        }
    }

    #[test]
    fn empty_log_is_supported() {
        let spec = LogSpec::sdss_style(0, 1);
        let log = spec.generate();
        assert!(log.is_empty());
    }

    #[test]
    fn serde_round_trip_of_spec() {
        let spec = LogSpec::flights_style(5, 2);
        let json = serde_json::to_string(&spec).unwrap();
        let back: LogSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
