//! Property-based tests for the malformed-input side of the fuzz ladder.
//!
//! Two invariants back the degraded-input pipeline: the lenient SQL front end is total
//! (no corpus query, under any noise op and seed, makes it panic — and its verdict always
//! agrees with the strict parser), and on clean input it is bit-identical to the strict
//! path.

use proptest::prelude::*;

use mctsui_sql::{parse_query, parse_query_lenient, print_query};
use mctsui_workload::corpus::{apply_noise, CorpusSpec, NoiseOp, SchemaFamily};

fn spec() -> impl Strategy<Value = CorpusSpec> {
    (
        prop_oneof![
            Just(SchemaFamily::Star),
            Just(SchemaFamily::Snowflake),
            Just(SchemaFamily::Log),
        ],
        0i64..500,
    )
        .prop_map(|(family, seed)| CorpusSpec::new(family, seed as u64))
}

fn noise_op() -> impl Strategy<Value = NoiseOp> {
    prop_oneof![
        Just(NoiseOp::Truncate),
        Just(NoiseOp::ByteSplice),
        Just(NoiseOp::KeywordSwap),
        Just(NoiseOp::DelimiterDrop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn noise_never_panics_the_lenient_front_end(
        spec in spec(),
        op in noise_op(),
        noise in 0u64..1_000_000,
    ) {
        // Every query of the session, damaged by every seedable mutation, must flow
        // through the lenient front end without panicking, and the lenient verdict must
        // match the strict parser's acceptance exactly.
        let log = spec.generate();
        for sql in &log.sql {
            let noisy = apply_noise(sql, op, noise);
            let lenient = parse_query_lenient(&noisy);
            match parse_query(&noisy) {
                Ok(strict) => {
                    prop_assert!(
                        lenient.is_clean(),
                        "{}:{op}: `{noisy}` strict-parses but lenient found {:?}",
                        spec.scenario_name(),
                        lenient.errors
                    );
                    prop_assert_eq!(lenient.ast.as_ref(), Some(&strict));
                }
                Err(_) => {
                    prop_assert!(
                        !lenient.is_clean(),
                        "{}:{op}: `{noisy}` fails strict parse but lenient is clean",
                        spec.scenario_name()
                    );
                }
            }
        }
    }

    #[test]
    fn lenient_is_bit_identical_to_strict_on_clean_corpus(spec in spec()) {
        let log = spec.generate();
        for sql in &log.sql {
            let strict = parse_query(sql).expect("corpus SQL is always strictly parseable");
            let lenient = parse_query_lenient(sql);
            prop_assert!(lenient.is_clean(), "{}: `{sql}` not clean", spec.scenario_name());
            let ast = lenient.ast.expect("clean parse has an AST");
            prop_assert_eq!(&ast, &strict);
            prop_assert_eq!(print_query(&ast), print_query(&strict));
        }
    }
}
