//! Property-based tests for the generated scenario corpus.
//!
//! The invariant the fuzz harness builds on: every `(family, seed)` session log is
//! parseable, derives a difftree, and every drift prefix of length >= 2 leaves the rule
//! engine with at least one applicable factoring action (the refine path never starves).

use proptest::prelude::*;

use mctsui_difftree::{initial_difftree, RuleEngine};
use mctsui_sql::parse_query;
use mctsui_workload::corpus::{CorpusSpec, SchemaFamily};

fn spec() -> impl Strategy<Value = CorpusSpec> {
    (
        prop_oneof![
            Just(SchemaFamily::Star),
            Just(SchemaFamily::Snowflake),
            Just(SchemaFamily::Log),
        ],
        0i64..500,
    )
        .prop_map(|(family, seed)| CorpusSpec::new(family, seed as u64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_drift_prefix_is_parseable_and_derivable(spec in spec()) {
        let log = spec.generate();
        prop_assert!(!log.is_empty(), "{}: empty session", spec.scenario_name());
        // Re-parse the rendered SQL independently of the generator's own parse.
        for sql in &log.sql {
            prop_assert!(
                parse_query(sql).is_ok(),
                "{}: unparseable query `{sql}`",
                spec.scenario_name()
            );
        }
        let engine = RuleEngine::default();
        for k in 2..=log.len() {
            let tree = initial_difftree(&log.queries[..k]);
            prop_assert!(tree.size() > 0, "{}: empty difftree at prefix {k}", spec.scenario_name());
            let actions = engine.applicable(&tree);
            prop_assert!(
                !actions.is_empty(),
                "{}: no applicable actions at prefix {k}",
                spec.scenario_name()
            );
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_spec(spec in spec()) {
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(a.sql, b.sql);
        prop_assert_eq!(a.schema, b.schema);
    }
}
