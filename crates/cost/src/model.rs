//! Cost weights and the evaluated cost breakdown.

use serde::{Deserialize, Serialize};

/// Weights of the linear combination that makes up `C(W, Q)`.
///
/// The paper describes the cost as "a linear combination of terms that can be incrementally
/// maintained"; the default weights treat every term equally, and the ablation benchmarks
/// sweep them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Weight of the widget-appropriateness term `Σ M(w)`.
    pub appropriateness: f64,
    /// Weight of the navigation term (size of the spanning subtree connecting changed widgets).
    pub navigation: f64,
    /// Weight of the per-widget interaction-effort term.
    pub interaction: f64,
    /// Weight of a mild per-widget footprint term that discourages unnecessary widgets.
    pub footprint: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        Self {
            appropriateness: 1.0,
            navigation: 0.6,
            interaction: 1.0,
            footprint: 0.15,
        }
    }
}

impl CostWeights {
    /// Weights that ignore the query sequence entirely (appropriateness only) — the setting
    /// of the 2017 bottom-up baseline, useful for ablations.
    pub fn appropriateness_only() -> Self {
        Self {
            appropriateness: 1.0,
            navigation: 0.0,
            interaction: 0.0,
            footprint: 0.0,
        }
    }

    /// Weights that emphasise sequence usability over widget appropriateness.
    pub fn usability_heavy() -> Self {
        Self {
            appropriateness: 0.5,
            navigation: 2.0,
            interaction: 2.0,
            footprint: 0.15,
        }
    }
}

/// The evaluated cost of one interface against one query log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterfaceCost {
    /// Σ M(w): widget appropriateness.
    pub appropriateness: f64,
    /// Σ_i navigation(q_i → q_{i+1}): spanning-subtree sizes.
    pub navigation: f64,
    /// Σ_i interaction(q_i → q_{i+1}): per-widget interaction effort.
    pub interaction: f64,
    /// Footprint term: number of widgets (scaled by its weight in `total`).
    pub footprint: f64,
    /// The weighted total. `f64::INFINITY` when the interface is invalid.
    pub total: f64,
    /// False when the interface cannot express some query or does not fit the screen.
    pub valid: bool,
}

impl InterfaceCost {
    /// The invalid-interface cost (screen violation or inexpressible query).
    pub fn invalid() -> Self {
        Self {
            appropriateness: f64::INFINITY,
            navigation: f64::INFINITY,
            interaction: f64::INFINITY,
            footprint: f64::INFINITY,
            total: f64::INFINITY,
            valid: false,
        }
    }

    /// Combine the raw terms into a total using the given weights.
    pub fn from_terms(
        appropriateness: f64,
        navigation: f64,
        interaction: f64,
        widget_count: usize,
        weights: &CostWeights,
    ) -> Self {
        let footprint = widget_count as f64;
        let total = weights.appropriateness * appropriateness
            + weights.navigation * navigation
            + weights.interaction * interaction
            + weights.footprint * footprint;
        Self {
            appropriateness,
            navigation,
            interaction,
            footprint,
            total,
            valid: total.is_finite(),
        }
    }

    /// The reward used by the search: the negated total cost (higher is better), with invalid
    /// interfaces mapped to a large negative constant so that UCT still orders them.
    pub fn reward(&self) -> f64 {
        if self.total.is_finite() {
            -self.total
        } else {
            -1e6
        }
    }

    /// True if `self` is strictly better (lower total) than `other`.
    pub fn better_than(&self, other: &InterfaceCost) -> bool {
        self.total < other.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_are_positive() {
        let w = CostWeights::default();
        assert!(w.appropriateness > 0.0);
        assert!(w.navigation > 0.0);
        assert!(w.interaction > 0.0);
        assert!(w.footprint >= 0.0);
    }

    #[test]
    fn from_terms_combines_linearly() {
        let w = CostWeights {
            appropriateness: 2.0,
            navigation: 1.0,
            interaction: 0.5,
            footprint: 0.0,
        };
        let c = InterfaceCost::from_terms(3.0, 4.0, 2.0, 7, &w);
        assert!((c.total - (6.0 + 4.0 + 1.0)).abs() < 1e-9);
        assert!(c.valid);
        assert_eq!(c.footprint, 7.0);
    }

    #[test]
    fn invalid_cost_is_infinite_and_reward_is_bounded() {
        let c = InterfaceCost::invalid();
        assert!(!c.valid);
        assert!(c.total.is_infinite());
        assert!(c.reward() <= -1e6 + 1.0);
        let ok = InterfaceCost::from_terms(1.0, 1.0, 1.0, 1, &CostWeights::default());
        assert!(ok.reward() > c.reward());
        assert!(ok.better_than(&c));
        assert!(!c.better_than(&ok));
    }

    #[test]
    fn appropriateness_only_ignores_sequence_terms() {
        let w = CostWeights::appropriateness_only();
        let a = InterfaceCost::from_terms(5.0, 100.0, 100.0, 3, &w);
        let b = InterfaceCost::from_terms(5.0, 0.0, 0.0, 3, &w);
        assert_eq!(a.total, b.total);
    }

    #[test]
    fn usability_heavy_emphasises_navigation() {
        let base = InterfaceCost::from_terms(1.0, 10.0, 0.0, 0, &CostWeights::default());
        let heavy = InterfaceCost::from_terms(1.0, 10.0, 0.0, 0, &CostWeights::usability_heavy());
        assert!(heavy.total > base.total);
    }
}
