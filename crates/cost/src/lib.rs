//! The interface cost model.
//!
//! The paper scores an interface (a widget tree `W`) against the input query log `Q` with
//!
//! ```text
//! C(W, Q) = Σ_i U(q_i, q_{i+1}, W)  +  Σ_{w ∈ W} M(w)
//! ```
//!
//! * `M(w)` — *appropriateness*: how well suited widget `w` is to the set of subtrees it must
//!   express (borrowed from Zhang, Sellam & Wu 2017). Implemented in
//!   [`mctsui_widgets::widget::appropriateness_cost`] and summed here.
//! * `U(q_i, q_{i+1}, W)` — *usability of the query sequence*: the minimum set of widgets
//!   that must be changed to turn `q_i` into `q_{i+1}`, costed as the size of the minimum
//!   spanning subtree of the widget tree connecting those widgets plus the cost of
//!   interacting with each of them.
//! * An interface whose layout exceeds the screen is **invalid** and has infinite cost.
//!
//! The expensive part of an evaluation — expressing each query in the difftree — depends only
//! on the difftree, not on the widget assignment, so [`QueryContext`] precomputes it once per
//! search state and is reused across the `k` random widget assignments of a rollout.

//!
//! Inside the search, evaluation does not build widget trees at all: [`ContextCache`] also
//! caches a compiled [`EvalPlan`] per state (the difftree's layout skeleton joined with the
//! per-transition changed-choice sets), and [`evaluate_slots`] / [`evaluate_sampled`] fold
//! plain index-vector assignments over it, bit-identically to the reference path.

pub mod eval;
pub mod model;

pub use eval::{
    evaluate, evaluate_batch, evaluate_sampled, evaluate_sampled_many, evaluate_slots,
    evaluate_with_context, per_sample_seed, ContextCache, ContextCacheStats, EvalPlan, EvalScratch,
    QueryContext, CONTEXT_DEFAULT_CAPACITY,
};
pub use model::{CostWeights, InterfaceCost};
