//! Evaluation of `C(W, Q)` — both the reference path over concrete widget trees and the
//! compiled-skeleton fast path over slot assignments — plus the fingerprint-keyed
//! [`ContextCache`] that makes state evaluation incremental across the search.

use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use mctsui_difftree::derive::express_log;
use mctsui_difftree::{
    changed_choice_paths, CacheCounters, ChoiceAssignment, DiffPath, DiffTree, Expressor,
    GenerationCache,
};
use mctsui_sql::Ast;
use mctsui_widgets::widget::appropriateness_cost;
use mctsui_widgets::{LayoutSkeleton, Screen, SlotAssignment, Widget, WidgetTree, WidgetType};

use crate::model::{CostWeights, InterfaceCost};

/// Everything about a `(difftree, query log)` pair that the cost function needs and that does
/// *not* depend on the widget assignment: the per-query choice assignments and the sets of
/// choice nodes that change between consecutive queries.
///
/// Building this once per search state and reusing it across the `k` random widget
/// assignments of a rollout is the "incremental maintenance" opportunity the paper points to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryContext {
    /// Whether every query of the log is expressible by the difftree.
    pub all_expressible: bool,
    /// Number of queries in the log.
    pub query_count: usize,
    /// For each consecutive query pair `(q_i, q_{i+1})`, the choice-node paths whose
    /// selections differ.
    pub transitions: Vec<Vec<DiffPath>>,
}

impl QueryContext {
    /// Express every query in the difftree and precompute the per-transition changed-choice
    /// sets. Queries that are not expressible mark the context invalid.
    ///
    /// This one-shot entry point uses a throwaway match memo (still shared across the
    /// queries of the log); inside search loops prefer [`ContextCache`], whose memo persists
    /// across states and turns the shared-subtree structure of persistent difftrees into
    /// cache hits.
    pub fn compute(tree: &DiffTree, queries: &[Ast]) -> Self {
        Self::from_assignments(tree, queries.len(), express_log(tree.root(), queries))
    }

    /// [`QueryContext::compute`] through a persistent [`Expressor`].
    fn compute_with_expressor(tree: &DiffTree, expressor: &mut Expressor) -> Self {
        let query_count = expressor.queries().len();
        let assignments: Vec<Option<ChoiceAssignment>> = (0..query_count)
            .map(|i| expressor.express(tree.root(), i))
            .collect();
        Self::from_assignments(tree, query_count, assignments)
    }

    fn from_assignments(
        tree: &DiffTree,
        query_count: usize,
        assignments: Vec<Option<ChoiceAssignment>>,
    ) -> Self {
        let all_expressible = assignments.iter().all(Option::is_some);
        let mut transitions = Vec::new();
        if all_expressible && query_count >= 2 {
            for pair in assignments.windows(2) {
                let (Some(a), Some(b)) = (&pair[0], &pair[1]) else {
                    continue;
                };
                transitions.push(changed_choice_paths(tree.root(), a, b));
            }
        }
        Self {
            all_expressible,
            query_count,
            transitions,
        }
    }

    /// Total number of widget changes across the whole log (the size of the "minimum set of
    /// widgets that need to be changed", summed over transitions).
    pub fn total_changes(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }
}

/// Cap on memoized match entries before the expressibility memo is dropped and rebuilt.
const MEMO_TRIM_THRESHOLD: usize = 1 << 21;

/// Default capacity (resident per-state entries) of the context and plan caches.
pub const CONTEXT_DEFAULT_CAPACITY: usize = 1 << 17;

/// Counter snapshots of the two per-state caches (surfaced through serving stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextCacheStats {
    /// Counters of the per-state [`QueryContext`] cache.
    pub contexts: CacheCounters,
    /// Counters of the compiled [`EvalPlan`] cache.
    pub plans: CacheCounters,
}

/// A shared, thread-safe cache of [`QueryContext`]s for one query log.
///
/// Two levels of reuse make state evaluation incremental across the search:
///
/// 1. **Per state** — contexts are keyed by the difftree's cached structural fingerprint
///    (an O(1) lookup key on persistent trees), so re-visiting a state never re-expresses
///    the log.
/// 2. **Across states** — the embedded [`Expressor`] memoizes subtree-versus-span match
///    results. Applying a rule produces a tree sharing every subtree off the edited spine
///    with its predecessor, so only transitions through the changed region are recomputed;
///    the rest of the expressibility work is looked up.
///
/// Both per-state caches are bounded [`GenerationCache`]s (second-chance generational
/// eviction), so a long-lived serving process keeps its live working set warm while cold
/// states age out; [`ContextCache::stats`] reports their hit/miss/eviction counters.
pub struct ContextCache {
    queries: Arc<[Ast]>,
    /// `None` while a worker has the shared expressor checked out for a computation.
    expressor: Mutex<Option<Expressor>>,
    contexts: GenerationCache<Arc<QueryContext>>,
    /// Compiled evaluation plans (layout skeleton + transition tables), keyed like
    /// `contexts` by the tree's structural fingerprint.
    plans: GenerationCache<Arc<EvalPlan>>,
}

impl ContextCache {
    /// Build a cache for a query log with the default per-state capacity.
    pub fn new(queries: Arc<[Ast]>) -> Self {
        Self::with_capacity(queries, CONTEXT_DEFAULT_CAPACITY)
    }

    /// [`ContextCache::new`] with an explicit bound on resident per-state entries (applied
    /// to the context cache and the plan cache independently).
    pub fn with_capacity(queries: Arc<[Ast]>, capacity: usize) -> Self {
        Self::with_capacity_and_shards(queries, capacity, mctsui_difftree::DEFAULT_CACHE_SHARDS)
    }

    /// [`ContextCache::with_capacity`] with an explicit shard count for the two per-state
    /// caches — serving processes with many workers raise it to spread lock pressure.
    pub fn with_capacity_and_shards(queries: Arc<[Ast]>, capacity: usize, shards: usize) -> Self {
        Self {
            queries: Arc::clone(&queries),
            expressor: Mutex::new(Some(Expressor::new(queries))),
            contexts: GenerationCache::with_shards(capacity, shards),
            plans: GenerationCache::with_shards(capacity, shards),
        }
    }

    /// The query log this cache evaluates against (a cheap handle to the shared log).
    pub fn queries(&self) -> &Arc<[Ast]> {
        &self.queries
    }

    /// The (cached) query context of a difftree state.
    ///
    /// The lock is never held across the (potentially expensive) context computation:
    /// the shared expressor is checked out under the lock, used outside it, and returned.
    /// If another worker has it checked out, this worker computes with a throwaway memo
    /// instead of blocking — root-parallel searches stay parallel, merely forgoing the
    /// cross-state memo for the overlapping computation.
    pub fn context_for(&self, tree: &DiffTree) -> Arc<QueryContext> {
        let key = tree.fingerprint();
        if let Some(ctx) = self.contexts.get(key) {
            return ctx;
        }
        let mut checked_out = self
            .expressor
            .lock()
            .expect("context cache expressor poisoned")
            .take();

        let ctx = Arc::new(match checked_out.as_mut() {
            Some(expressor) => QueryContext::compute_with_expressor(tree, expressor),
            None => QueryContext::compute(tree, &self.queries),
        });

        if let Some(mut expressor) = checked_out {
            expressor.trim(MEMO_TRIM_THRESHOLD);
            *self
                .expressor
                .lock()
                .expect("context cache expressor poisoned") = Some(expressor);
        }
        // A concurrent worker may have computed the same state; keep the first entry.
        self.contexts.insert(key, ctx)
    }

    /// The (cached) evaluation plan of a difftree state: its [`QueryContext`] joined with
    /// its compiled [`LayoutSkeleton`] and the precomputed transition tables.
    ///
    /// Same discipline as [`ContextCache::context_for`]: the lock is never held across the
    /// compile, so root-parallel workers overlap freely and the first finished plan for a
    /// fingerprint wins.
    pub fn plan_for(&self, tree: &DiffTree) -> Arc<EvalPlan> {
        let key = tree.fingerprint();
        if let Some(plan) = self.plans.get(key) {
            return plan;
        }

        let ctx = self.context_for(tree);
        let skeleton = Arc::new(LayoutSkeleton::compile(tree));
        let plan = Arc::new(EvalPlan::new(ctx, skeleton));

        // A concurrent worker may have compiled the same state; keep the first entry.
        self.plans.insert(key, plan)
    }

    /// Number of cached per-state contexts (exposed for diagnostics).
    pub fn cached_states(&self) -> usize {
        self.contexts.len()
    }

    /// Hit/miss/eviction counters of the context and plan caches (for serving stats).
    pub fn stats(&self) -> ContextCacheStats {
        ContextCacheStats {
            contexts: self.contexts.counters(),
            plans: self.plans.counters(),
        }
    }

    /// Per-shard counters of the compiled-plan cache (the hot cache of the batched serving
    /// path; one entry per shard).
    pub fn plan_shard_counters(&self) -> Vec<CacheCounters> {
        self.plans.shard_counters()
    }
}

/// Per-widget interaction effort: the widget's motor/attention steps scaled by how much the
/// user must scan (larger domains take longer to locate the right option) plus a reading
/// cost that grows with the complexity of the options — choosing among whole printed queries
/// is far more effortful than choosing among three short values, which is what makes the
/// "one button per query" interface of Figure 6(d) score poorly on long logs.
///
/// Exposed on domain *features* rather than a built [`Widget`] so the skeleton fast path can
/// precompute per-candidate efforts with bit-identical arithmetic.
fn interaction_effort_features(
    widget_type: WidgetType,
    cardinality: usize,
    mean_subtree_size: f64,
) -> f64 {
    let card = cardinality.max(1) as f64;
    let scan = widget_type.interaction_steps() * (1.0 + card.log2().max(0.0) * 0.15);
    let reading = 0.08 * mean_subtree_size * card.log2().max(0.0);
    scan + reading
}

fn interaction_effort(widget: &Widget) -> f64 {
    interaction_effort_features(
        widget.widget_type,
        widget.domain.cardinality,
        widget.domain.mean_subtree_size,
    )
}

/// Evaluate an interface against a query log, computing the [`QueryContext`] on the fly.
///
/// Prefer [`evaluate_with_context`] inside search loops — the context only depends on the
/// difftree and can be shared across many candidate widget trees.
pub fn evaluate(
    tree: &DiffTree,
    widget_tree: &WidgetTree,
    queries: &[Ast],
    weights: &CostWeights,
) -> InterfaceCost {
    let ctx = QueryContext::compute(tree, queries);
    evaluate_with_context(widget_tree, &ctx, weights)
}

/// Evaluate an interface given a precomputed [`QueryContext`].
pub fn evaluate_with_context(
    widget_tree: &WidgetTree,
    ctx: &QueryContext,
    weights: &CostWeights,
) -> InterfaceCost {
    if !ctx.all_expressible {
        return InterfaceCost::invalid();
    }
    if !widget_tree.fits_screen() {
        return InterfaceCost::invalid();
    }

    let widgets = widget_tree.widgets();
    let by_choice: FxHashMap<&DiffPath, &Widget> =
        widgets.iter().map(|(_, w)| (&w.target, *w)).collect();

    // M(w): appropriateness of every widget in the tree.
    let mut appropriateness = 0.0;
    for (_, widget) in &widgets {
        let m = appropriateness_cost(widget.widget_type, &widget.domain);
        if !m.is_finite() {
            return InterfaceCost::invalid();
        }
        appropriateness += m;
    }

    // U(q_i, q_{i+1}, W): navigation (spanning subtree) + interaction effort per transition.
    let mut navigation = 0.0;
    let mut interaction = 0.0;
    for changed in &ctx.transitions {
        navigation += widget_tree.steiner_edge_count(changed) as f64;
        for path in changed {
            match by_choice.get(path) {
                Some(widget) => interaction += interaction_effort(widget),
                // A required change with no widget to express it: the interface cannot
                // actually replay the log.
                None => return InterfaceCost::invalid(),
            }
        }
    }

    InterfaceCost::from_terms(
        appropriateness,
        navigation,
        interaction,
        widgets.len(),
        weights,
    )
}

// ---------------------------------------------------------------------- skeleton fast path

/// Everything a reward evaluation needs about one `(difftree, query log)` pair, compiled
/// once and cached by tree fingerprint: the [`QueryContext`] (expressibility + per-transition
/// changed choice sets), the [`LayoutSkeleton`] (widget-tree shape + candidate widgets), and
/// the transition data joined against the skeleton — per transition, the precomputed
/// navigation (Steiner) edge count, which is assignment-*independent*, and the changed choice
/// slots with a per-candidate interaction-effort table.
///
/// With a plan in hand, evaluating one assignment ([`evaluate_slots`]) is a single bottom-up
/// fold plus flat table sums: no tree construction, no path maps, no allocation beyond a
/// reusable scratch stack.
#[derive(Debug)]
pub struct EvalPlan {
    /// The query context of the difftree.
    pub ctx: Arc<QueryContext>,
    /// The compiled layout skeleton of the difftree.
    pub skeleton: Arc<LayoutSkeleton>,
    /// False when some transition changes a choice node with no bound widget — every
    /// evaluation of such a state is invalid (the interface cannot replay the log).
    transitions_valid: bool,
    /// Per transition: the Steiner edge count of the changed widgets' connecting subtree.
    nav_per_transition: Vec<f64>,
    /// Changed choice slots, flattened across transitions in evaluation order.
    changed_slots: Vec<u32>,
    /// Interaction effort per (choice slot, candidate), flattened; `effort_offsets[s]`
    /// indexes slot `s`'s candidate row.
    efforts: Vec<f64>,
    effort_offsets: Vec<u32>,
}

impl EvalPlan {
    /// Join a query context with a compiled skeleton.
    pub fn new(ctx: Arc<QueryContext>, skeleton: Arc<LayoutSkeleton>) -> Self {
        let mut efforts = Vec::new();
        let mut effort_offsets = Vec::with_capacity(skeleton.choice_slots().len());
        for slot in skeleton.choice_slots() {
            effort_offsets.push(efforts.len() as u32);
            for cand in &slot.candidates {
                efforts.push(interaction_effort_features(
                    cand.widget_type,
                    slot.cardinality,
                    slot.mean_subtree_size,
                ));
            }
        }

        let mut transitions_valid = true;
        let mut nav_per_transition = Vec::with_capacity(ctx.transitions.len());
        let mut changed_slots = Vec::new();
        let mut members = Vec::new();
        for changed in &ctx.transitions {
            members.clear();
            for path in changed {
                match skeleton.slot_of_choice(path) {
                    Some(slot) => {
                        members.push(skeleton.choice_slots()[slot as usize].node);
                        changed_slots.push(slot);
                    }
                    None => transitions_valid = false,
                }
            }
            nav_per_transition.push(skeleton.steiner_edge_count(&members) as f64);
        }

        Self {
            ctx,
            skeleton,
            transitions_valid,
            nav_per_transition,
            changed_slots,
            efforts,
            effort_offsets,
        }
    }

    #[inline]
    fn effort(&self, slot: u32, candidate: usize) -> f64 {
        self.efforts[self.effort_offsets[slot as usize] as usize + candidate]
    }

    /// The assignment-independent navigation term: the same left-to-right fold
    /// [`evaluate_slots`] has always performed, exposed so batch evaluation can hoist it
    /// out of the per-assignment loop without changing a bit of the result.
    #[inline]
    fn nav_total(&self) -> f64 {
        let mut navigation = 0.0;
        for nav in &self.nav_per_transition {
            navigation += nav;
        }
        navigation
    }
}

/// Reusable buffers for [`evaluate_slots`]; create once and share across evaluations to keep
/// the hot loop allocation-free.
#[derive(Debug, Default)]
pub struct EvalScratch {
    boxes: Vec<(u32, u32)>,
}

/// Evaluate one slot assignment against a compiled [`EvalPlan`] — the fast-path twin of
/// building a widget tree and calling [`evaluate_with_context`], returning a bit-identical
/// [`InterfaceCost`] (the `mctsui-cost` property tests pin the equivalence).
pub fn evaluate_slots(
    plan: &EvalPlan,
    slots: &SlotAssignment,
    screen: Screen,
    weights: &CostWeights,
    scratch: &mut EvalScratch,
) -> InterfaceCost {
    if !plan.ctx.all_expressible {
        return InterfaceCost::invalid();
    }
    evaluate_slots_hoisted(plan, slots, screen, weights, scratch, plan.nav_total())
}

/// Evaluate a whole batch of slot assignments against one compiled [`EvalPlan`],
/// amortizing the assignment-independent work (expressibility verdict, transition
/// validity, the navigation-term fold) across the batch. Results are bit-identical to
/// calling [`evaluate_slots`] once per assignment, in order — the batched serving
/// scheduler leans on this pin (and the crate's property tests enforce it).
pub fn evaluate_batch(
    plan: &EvalPlan,
    batch: &[SlotAssignment],
    screen: Screen,
    weights: &CostWeights,
    scratch: &mut EvalScratch,
) -> Vec<InterfaceCost> {
    if !plan.ctx.all_expressible {
        return vec![InterfaceCost::invalid(); batch.len()];
    }
    let nav_total = plan.nav_total();
    batch
        .iter()
        .map(|slots| evaluate_slots_hoisted(plan, slots, screen, weights, scratch, nav_total))
        .collect()
}

/// The assignment-dependent tail of [`evaluate_slots`], with the assignment-independent
/// prefix (`all_expressible`, the navigation fold) hoisted out by the caller. The fold
/// order of every remaining sum matches the historical single-shot path exactly, keeping
/// the arithmetic bitwise stable.
fn evaluate_slots_hoisted(
    plan: &EvalPlan,
    slots: &SlotAssignment,
    screen: Screen,
    weights: &CostWeights,
    scratch: &mut EvalScratch,
    nav_total: f64,
) -> InterfaceCost {
    let (w, h) = plan.skeleton.bounding_box(slots, &mut scratch.boxes);
    if !screen.fits(w, h) {
        return InterfaceCost::invalid();
    }

    // M(w): appropriateness, pre-resolved per candidate, summed in widget order.
    let mut appropriateness = 0.0;
    for (i, slot) in plan.skeleton.choice_slots().iter().enumerate() {
        let idx = slots.choice(i).min(slot.candidates.len() - 1);
        let m = slot.candidates[idx].appropriateness;
        if !m.is_finite() {
            return InterfaceCost::invalid();
        }
        appropriateness += m;
    }

    if !plan.transitions_valid {
        return InterfaceCost::invalid();
    }

    // U(q_i, q_{i+1}, W): the navigation term is assignment-independent (precomputed); the
    // interaction term is a table lookup per changed slot, in transition order.
    let mut interaction = 0.0;
    for &slot in &plan.changed_slots {
        let idx = slots
            .choice(slot as usize)
            .min(plan.skeleton.choice_slots()[slot as usize].candidates.len() - 1);
        interaction += plan.effort(slot, idx);
    }

    InterfaceCost::from_terms(
        appropriateness,
        nav_total,
        interaction,
        plan.skeleton.widget_count(),
        weights,
    )
}

/// The per-sample rollout seed: a splitmix64 hash of `(eval_seed, index)`.
///
/// Seeding sample `i` with `eval_seed + i` (the previous scheme) makes adjacent samples'
/// generators start one counter step apart, so their draw streams are heavily correlated;
/// hashing decorrelates every sample while staying deterministic per `(eval_seed, index)`.
pub fn per_sample_seed(eval_seed: u64, index: u64) -> u64 {
    let mut z = eval_seed.wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The best of the greedy default assignment plus `k` random slot assignments, evaluated
/// entirely on the compiled plan. This is the search's reward kernel: the skeleton is
/// compiled once per state, the `k + 1` evaluations share one scratch buffer and two slot
/// vectors, and each sample draws from its own hash-derived seed (see [`per_sample_seed`]).
pub fn evaluate_sampled(
    plan: &EvalPlan,
    screen: Screen,
    weights: &CostWeights,
    k: usize,
    eval_seed: u64,
) -> (SlotAssignment, InterfaceCost) {
    let mut scratch = EvalScratch::default();
    let mut best = plan.skeleton.default_slots();
    let mut best_cost = evaluate_slots(plan, &best, screen, weights, &mut scratch);
    let mut sample = best.clone();
    for i in 0..k as u64 {
        let mut rng = StdRng::seed_from_u64(per_sample_seed(eval_seed, i));
        plan.skeleton.sample_into(&mut sample, &mut rng);
        let cost = evaluate_slots(plan, &sample, screen, weights, &mut scratch);
        if cost.better_than(&best_cost) {
            best_cost = cost;
            // Swap rather than clone; `sample` is fully overwritten on the next draw.
            std::mem::swap(&mut best, &mut sample);
        }
    }
    (best, best_cost)
}

/// [`evaluate_sampled`] for many evaluation seeds over one compiled plan: the reward
/// kernel of the batched serving scheduler. The greedy default assignment is evaluated
/// *once* and reused as every seed's baseline (it is seed-independent), and all `k`
/// samples of every seed go through [`evaluate_batch`] in one pass — per-seed results are
/// bit-identical to calling `evaluate_sampled` in a loop (only the winning assignments,
/// which the reward path discards, are not materialised).
pub fn evaluate_sampled_many(
    plan: &EvalPlan,
    screen: Screen,
    weights: &CostWeights,
    k: usize,
    eval_seeds: &[u64],
) -> Vec<InterfaceCost> {
    let mut scratch = EvalScratch::default();
    let default_slots = plan.skeleton.default_slots();
    let default_cost = evaluate_slots(plan, &default_slots, screen, weights, &mut scratch);

    let mut samples: Vec<SlotAssignment> = Vec::with_capacity(eval_seeds.len() * k);
    let mut sample = default_slots;
    for &eval_seed in eval_seeds {
        for i in 0..k as u64 {
            let mut rng = StdRng::seed_from_u64(per_sample_seed(eval_seed, i));
            plan.skeleton.sample_into(&mut sample, &mut rng);
            samples.push(sample.clone());
        }
    }
    let costs = evaluate_batch(plan, &samples, screen, weights, &mut scratch);

    (0..eval_seeds.len())
        .map(|s| {
            let mut best_cost = default_cost;
            for cost in &costs[s * k..(s + 1) * k] {
                if cost.better_than(&best_cost) {
                    best_cost = *cost;
                }
            }
            best_cost
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctsui_difftree::{initial_difftree, RuleEngine, RuleId};
    use mctsui_sql::parse_query;
    use mctsui_widgets::{build_widget_tree, default_assignment, random_assignment, Screen};

    fn queries() -> Vec<Ast> {
        vec![
            parse_query("SELECT Sales FROM sales WHERE cty = 'USA'").unwrap(),
            parse_query("SELECT Costs FROM sales WHERE cty = 'EUR'").unwrap(),
            parse_query("SELECT Costs FROM sales").unwrap(),
        ]
    }

    fn factored_tree(queries: &[Ast]) -> DiffTree {
        let tree = initial_difftree(queries);
        let engine = RuleEngine::default();
        let app = engine
            .applicable(&tree)
            .into_iter()
            .find(|a| a.rule == RuleId::Any2All)
            .unwrap();
        engine.apply(&tree, &app).unwrap()
    }

    #[test]
    fn context_detects_expressibility() {
        let qs = queries();
        let tree = initial_difftree(&qs);
        let ctx = QueryContext::compute(&tree, &qs);
        assert!(ctx.all_expressible);
        assert_eq!(ctx.transitions.len(), qs.len() - 1);

        let foreign = vec![parse_query("select z from elsewhere").unwrap()];
        let bad_ctx = QueryContext::compute(&tree, &foreign);
        assert!(!bad_ctx.all_expressible);
    }

    #[test]
    fn invalid_when_query_not_expressible() {
        let qs = queries();
        let tree = initial_difftree(&qs);
        let wt = build_widget_tree(&tree, &default_assignment(&tree), Screen::wide());
        let mut extended = qs.clone();
        extended.push(parse_query("select something from nowhere").unwrap());
        let cost = evaluate(&tree, &wt, &extended, &CostWeights::default());
        assert!(!cost.valid);
    }

    #[test]
    fn invalid_when_screen_too_small() {
        let qs = queries();
        let tree = factored_tree(&qs);
        let wt = build_widget_tree(&tree, &default_assignment(&tree), Screen::tiny());
        let cost = evaluate(&tree, &wt, &qs, &CostWeights::default());
        assert!(!cost.valid);
        assert!(cost.total.is_infinite());
    }

    #[test]
    fn finite_cost_for_valid_interface() {
        let qs = queries();
        let tree = factored_tree(&qs);
        let wt = build_widget_tree(&tree, &default_assignment(&tree), Screen::wide());
        let cost = evaluate(&tree, &wt, &qs, &CostWeights::default());
        assert!(cost.valid, "expected valid interface, got {cost:?}");
        assert!(cost.total > 0.0);
        assert!(cost.appropriateness > 0.0);
        // The log exercises both the projection change and the optional WHERE clause, so the
        // sequence terms must be non-zero.
        assert!(cost.interaction > 0.0);
    }

    #[test]
    fn good_widget_choices_beat_bad_ones_on_the_same_difftree() {
        // On the same factored difftree, the greedy best-appropriateness assignment must cost
        // less than a deliberately clumsy all-textbox assignment. This is the discriminative
        // power the MCTS reward relies on.
        let qs = queries();
        let tree = factored_tree(&qs);
        let weights = CostWeights::default();

        let good = build_widget_tree(&tree, &default_assignment(&tree), Screen::wide());
        let cost_good = evaluate(&tree, &good, &qs, &weights);

        let mut clumsy = default_assignment(&tree);
        for t in clumsy.types.values_mut() {
            *t = mctsui_widgets::WidgetType::Textbox;
        }
        let bad = build_widget_tree(&tree, &clumsy, Screen::wide());
        let cost_bad = evaluate(&tree, &bad, &qs, &weights);

        assert!(cost_good.valid && cost_bad.valid);
        assert!(
            cost_good.total <= cost_bad.total,
            "good {} should not exceed bad {}",
            cost_good.total,
            cost_bad.total
        );
    }

    #[test]
    fn factoring_beats_one_button_per_query_on_longer_logs() {
        // For a longer, template-structured log (six queries varying table and TOP-N), the
        // fully factored interface must beat the one-button-per-query interface of the
        // initial state — the paper's core premise (its Figure 6(d) is the low-reward
        // interface).
        let mut qs = Vec::new();
        for (table, top) in [
            ("stars", 10),
            ("galaxies", 100),
            ("quasars", 1000),
            ("stars", 100),
            ("galaxies", 10),
            ("quasars", 100),
        ] {
            qs.push(
                parse_query(&format!(
                    "select top {top} objid from {table} where u between 0 and 30"
                ))
                .unwrap(),
            );
        }
        let weights = CostWeights::default();

        let initial = initial_difftree(&qs);
        let wt_initial = build_widget_tree(&initial, &default_assignment(&initial), Screen::wide());
        let cost_initial = evaluate(&initial, &wt_initial, &qs, &weights);

        let factored = RuleEngine::default().saturate_forward(&initial, 200);
        let wt_factored =
            build_widget_tree(&factored, &default_assignment(&factored), Screen::wide());
        let cost_factored = evaluate(&factored, &wt_factored, &qs, &weights);

        assert!(cost_initial.valid && cost_factored.valid);
        assert!(
            cost_factored.better_than(&cost_initial),
            "factored {} should beat one-button-per-query {}",
            cost_factored.total,
            cost_initial.total
        );
    }

    #[test]
    fn context_reuse_matches_direct_evaluation() {
        let qs = queries();
        let tree = factored_tree(&qs);
        let ctx = QueryContext::compute(&tree, &qs);
        let weights = CostWeights::default();
        for seed in 0..5 {
            let wt = build_widget_tree(&tree, &random_assignment(&tree, seed), Screen::wide());
            let direct = evaluate(&tree, &wt, &qs, &weights);
            let via_ctx = evaluate_with_context(&wt, &ctx, &weights);
            assert_eq!(direct, via_ctx);
        }
    }

    #[test]
    fn single_query_log_has_no_sequence_cost() {
        let qs = vec![parse_query("select x from t").unwrap()];
        let tree = initial_difftree(&qs);
        let wt = build_widget_tree(&tree, &default_assignment(&tree), Screen::wide());
        let cost = evaluate(&tree, &wt, &qs, &CostWeights::default());
        assert!(cost.valid);
        assert_eq!(cost.navigation, 0.0);
        assert_eq!(cost.interaction, 0.0);
        assert_eq!(cost.appropriateness, 0.0);
    }

    #[test]
    fn bounded_context_cache_stays_correct_and_reports_counters() {
        // A tiny capacity forces evictions across a walk of distinct states; cached results
        // must stay identical to uncached recomputation and the counters must move.
        let qs = queries();
        let queries_arc: Arc<[Ast]> = qs.clone().into();
        let tiny = ContextCache::with_capacity(Arc::clone(&queries_arc), 4);
        let engine = RuleEngine::default();
        let mut tree = initial_difftree(&qs);
        for step in 0..8 {
            let cached = tiny.context_for(&tree);
            let direct = QueryContext::compute(&tree, &qs);
            assert_eq!(*cached, direct, "context diverged at step {step}");
            // Second lookup of the same state is a hit.
            let again = tiny.context_for(&tree);
            assert_eq!(*again, direct);
            assert!(tiny.cached_states() <= 4, "capacity bound violated");
            let apps = engine.applicable(&tree);
            if apps.is_empty() {
                break;
            }
            tree = engine.apply(&tree, &apps[step % apps.len()]).unwrap();
        }
        let stats = tiny.stats();
        assert!(stats.contexts.hits > 0);
        assert!(stats.contexts.misses > 0);
        assert!(stats.contexts.insertions > 0);
    }

    #[test]
    fn total_changes_counts_transitions() {
        let qs = queries();
        let tree = initial_difftree(&qs);
        let ctx = QueryContext::compute(&tree, &qs);
        // Every consecutive pair differs (distinct queries through one root ANY): 2 changes.
        assert_eq!(ctx.total_changes(), 2);
    }
}
