//! Property-based tests of the cost model.
//!
//! Invariants:
//!
//! 1. Costs are never negative or NaN; invalid interfaces are exactly the infinite ones.
//! 2. A precomputed `QueryContext` gives the same answer as direct evaluation.
//! 3. A log with a single query has zero sequence cost.
//! 4. Appending a query to the log never decreases the total cost (more transitions to pay
//!    for, same widgets) as long as the query is expressible.
//! 5. The batched kernel (`evaluate_batch`, `evaluate_sampled_many`) is bit-identical to
//!    the corresponding sequence of single-assignment calls — the serving scheduler's
//!    determinism pins rest on this.

use proptest::prelude::*;

use mctsui_cost::{
    evaluate, evaluate_batch, evaluate_sampled, evaluate_sampled_many, evaluate_slots,
    evaluate_with_context, ContextCache, CostWeights, EvalScratch, QueryContext,
};
use mctsui_difftree::{initial_difftree, DiffTree, RuleEngine};
use mctsui_sql::{parse_query, Ast};
use mctsui_widgets::{
    build_widget_tree, default_assignment, random_assignment, Screen, SlotAssignment,
};

fn query_log() -> impl Strategy<Value = Vec<Ast>> {
    let table = prop_oneof![Just("stars"), Just("galaxies")];
    let projection = prop_oneof![Just("objid"), Just("count(*)")];
    let top = proptest::option::of(prop_oneof![Just(10i64), Just(100)]);
    let one = (table, projection, top).prop_map(|(t, p, top)| {
        let mut sql = String::from("select ");
        if let Some(n) = top {
            sql.push_str(&format!("top {n} "));
        }
        sql.push_str(&format!("{p} from {t} where u between 0 and 30"));
        parse_query(&sql).unwrap()
    });
    proptest::collection::vec(one, 2..7)
}

fn factored(queries: &[Ast]) -> DiffTree {
    RuleEngine::default().saturate_forward(&initial_difftree(queries), 300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn costs_are_never_negative_or_nan(queries in query_log(), seed in 0u64..200) {
        let tree = factored(&queries);
        let wt = build_widget_tree(&tree, &random_assignment(&tree, seed), Screen::wide());
        let cost = evaluate(&tree, &wt, &queries, &CostWeights::default());
        prop_assert!(!cost.total.is_nan());
        prop_assert!(cost.total >= 0.0);
        prop_assert_eq!(cost.valid, cost.total.is_finite());
        if cost.valid {
            prop_assert!(cost.appropriateness >= 0.0);
            prop_assert!(cost.navigation >= 0.0);
            prop_assert!(cost.interaction >= 0.0);
            prop_assert!(cost.reward() <= 0.0);
        }
    }

    #[test]
    fn context_reuse_is_equivalent(queries in query_log(), seed in 0u64..200) {
        let tree = factored(&queries);
        let ctx = QueryContext::compute(&tree, &queries);
        let weights = CostWeights::default();
        let wt = build_widget_tree(&tree, &random_assignment(&tree, seed), Screen::wide());
        prop_assert_eq!(
            evaluate(&tree, &wt, &queries, &weights),
            evaluate_with_context(&wt, &ctx, &weights)
        );
    }

    #[test]
    fn single_query_has_zero_sequence_cost(queries in query_log()) {
        let single = vec![queries[0].clone()];
        let tree = initial_difftree(&single);
        let wt = build_widget_tree(&tree, &default_assignment(&tree), Screen::wide());
        let cost = evaluate(&tree, &wt, &single, &CostWeights::default());
        prop_assert!(cost.valid);
        prop_assert_eq!(cost.navigation, 0.0);
        prop_assert_eq!(cost.interaction, 0.0);
    }

    #[test]
    fn longer_logs_never_cost_less_on_the_same_interface(queries in query_log()) {
        let tree = factored(&queries);
        let wt = build_widget_tree(&tree, &default_assignment(&tree), Screen::wide());
        let weights = CostWeights::default();
        let full = evaluate(&tree, &wt, &queries, &weights);
        let prefix = evaluate(&tree, &wt, &queries[..queries.len() - 1], &weights);
        if full.valid && prefix.valid {
            prop_assert!(full.total + 1e-9 >= prefix.total,
                "full log {} cheaper than its prefix {}", full.total, prefix.total);
        }
    }

    #[test]
    fn inexpressible_query_invalidates_the_interface(queries in query_log()) {
        let tree = factored(&queries);
        let wt = build_widget_tree(&tree, &default_assignment(&tree), Screen::wide());
        let mut extended = queries.clone();
        extended.push(parse_query("select completely_other from another_table").unwrap());
        let cost = evaluate(&tree, &wt, &extended, &CostWeights::default());
        prop_assert!(!cost.valid);
    }

    #[test]
    fn batched_evaluation_matches_sequential_slots(
        queries in query_log(),
        seeds in proptest::collection::vec(0u64..500, 1..6),
    ) {
        let tree = factored(&queries);
        let cache = ContextCache::new(queries.into());
        let plan = cache.plan_for(&tree);
        let weights = CostWeights::default();
        let batch: Vec<SlotAssignment> = seeds
            .iter()
            .map(|&seed| plan.skeleton.slots_from_map(&random_assignment(&tree, seed)))
            .collect();
        let batched = evaluate_batch(
            &plan,
            &batch,
            Screen::wide(),
            &weights,
            &mut EvalScratch::default(),
        );
        prop_assert_eq!(batched.len(), batch.len());
        let mut scratch = EvalScratch::default();
        for (slots, got) in batch.iter().zip(&batched) {
            let expect = evaluate_slots(&plan, slots, Screen::wide(), &weights, &mut scratch);
            prop_assert_eq!(got.total.to_bits(), expect.total.to_bits());
            prop_assert_eq!(*got, expect);
        }
    }

    #[test]
    fn sampled_many_matches_per_seed_sampled(
        queries in query_log(),
        seeds in proptest::collection::vec(0u64..500, 1..5),
        k in 0usize..4,
    ) {
        let tree = factored(&queries);
        let cache = ContextCache::new(queries.into());
        let plan = cache.plan_for(&tree);
        let weights = CostWeights::default();
        let many = evaluate_sampled_many(&plan, Screen::wide(), &weights, k, &seeds);
        prop_assert_eq!(many.len(), seeds.len());
        for (&seed, got) in seeds.iter().zip(many) {
            let (_, expect) = evaluate_sampled(&plan, Screen::wide(), &weights, k, seed);
            prop_assert_eq!(got.total.to_bits(), expect.total.to_bits());
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn tiny_screens_invalidate_non_trivial_interfaces(queries in query_log()) {
        let tree = factored(&queries);
        if tree.choice_count() == 0 {
            return Ok(());
        }
        let wt = build_widget_tree(&tree, &default_assignment(&tree), Screen::tiny());
        let cost = evaluate(&tree, &wt, &queries, &CostWeights::default());
        prop_assert!(!cost.valid);
    }
}
