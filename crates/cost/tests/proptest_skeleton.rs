//! Property tests pinning the compiled-skeleton fast path to the reference evaluator.
//!
//! Invariants:
//!
//! 1. For random difftrees (random logs, random rule applications), random widget
//!    assignments and every screen preset, evaluating through the compiled [`EvalPlan`]
//!    returns a **bit-identical** `InterfaceCost` to building the widget tree and calling
//!    `evaluate_with_context` — including invalid (screen-overflow) outcomes.
//! 2. `evaluate_sampled` is deterministic per `(plan, seed)` and its per-sample seeds are
//!    pairwise distinct (the splitmix64 decorrelation fix).
//! 3. The sampled best is never worse than the greedy default assignment.

use proptest::prelude::*;

use mctsui_cost::{
    evaluate_sampled, evaluate_slots, evaluate_with_context, per_sample_seed, CostWeights,
    EvalPlan, EvalScratch, QueryContext,
};
use mctsui_difftree::{initial_difftree, DiffTree, RuleEngine};
use mctsui_sql::{parse_query, Ast};
use mctsui_widgets::{build_widget_tree, random_assignment, LayoutSkeleton, Screen};

use std::sync::Arc;

fn query_log() -> impl Strategy<Value = Vec<Ast>> {
    let table = prop_oneof![Just("stars"), Just("galaxies"), Just("quasars")];
    let projection = prop_oneof![Just("objid"), Just("count(*)"), Just("ra")];
    let top = proptest::option::of(prop_oneof![Just(10i64), Just(100), Just(1000)]);
    let lo = 0i64..10;
    let with_where = any::<bool>();
    let one = (table, projection, top, lo, with_where).prop_map(|(t, p, top, lo, w)| {
        let mut sql = String::from("select ");
        if let Some(n) = top {
            sql.push_str(&format!("top {n} "));
        }
        sql.push_str(&format!("{p} from {t}"));
        if w {
            sql.push_str(&format!(
                " where u between {lo} and 30 and g between 0 and 25"
            ));
        }
        parse_query(&sql).unwrap()
    });
    proptest::collection::vec(one, 2..7)
}

/// A random search state: the initial difftree advanced by up to `steps` rule applications,
/// each picked deterministically from the applicable set.
fn random_state(queries: &[Ast], steps: usize, pick_salt: usize) -> DiffTree {
    let engine = RuleEngine::default();
    let mut tree = initial_difftree(queries);
    for step in 0..steps {
        let apps = engine.applicable(&tree);
        if apps.is_empty() {
            break;
        }
        let app = &apps[(pick_salt.wrapping_mul(31).wrapping_add(step * 7)) % apps.len()];
        match engine.apply(&tree, app) {
            Some(next) => tree = next,
            None => break,
        }
    }
    tree
}

fn screens() -> [Screen; 3] {
    [Screen::wide(), Screen::narrow(), Screen::tiny()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn skeleton_evaluation_matches_reference(
        queries in query_log(),
        steps in 0usize..8,
        pick_salt in 0usize..1000,
        assignment_seed in 0u64..1_000_000,
    ) {
        let tree = random_state(&queries, steps, pick_salt);
        let ctx = Arc::new(QueryContext::compute(&tree, &queries));
        let skeleton = Arc::new(LayoutSkeleton::compile(&tree));
        let plan = EvalPlan::new(Arc::clone(&ctx), skeleton);
        let weights = CostWeights::default();
        let mut scratch = EvalScratch::default();

        let map = random_assignment(&tree, assignment_seed);
        let slots = plan.skeleton.slots_from_map(&map);
        for screen in screens() {
            let wt = build_widget_tree(&tree, &map, screen);
            let reference = evaluate_with_context(&wt, &ctx, &weights);
            let fast = evaluate_slots(&plan, &slots, screen, &weights, &mut scratch);
            prop_assert!(
                reference == fast,
                "screen {:?}: reference {:?} != fast {:?} ({} queries, {} steps)",
                screen, reference, fast, queries.len(), steps
            );
        }
    }

    #[test]
    fn sampled_evaluation_is_deterministic_and_beats_default(
        queries in query_log(),
        steps in 0usize..6,
        pick_salt in 0usize..1000,
        eval_seed in 0u64..1_000_000,
    ) {
        let tree = random_state(&queries, steps, pick_salt);
        let ctx = Arc::new(QueryContext::compute(&tree, &queries));
        let plan = EvalPlan::new(ctx, Arc::new(LayoutSkeleton::compile(&tree)));
        let weights = CostWeights::default();
        let screen = Screen::wide();

        let (slots_a, cost_a) = evaluate_sampled(&plan, screen, &weights, 4, eval_seed);
        let (slots_b, cost_b) = evaluate_sampled(&plan, screen, &weights, 4, eval_seed);
        prop_assert_eq!(&slots_a, &slots_b);
        prop_assert_eq!(cost_a, cost_b);

        let default_cost = evaluate_slots(
            &plan,
            &plan.skeleton.default_slots(),
            screen,
            &weights,
            &mut EvalScratch::default(),
        );
        prop_assert!(cost_a.total <= default_cost.total || !default_cost.valid);
    }
}

/// Deterministic deep-equivalence check on a fully saturated (heavily factored) difftree:
/// the random states above stay within a few rule steps, so pin the far end of the search
/// space too — 50 random assignments across all screen presets.
#[test]
fn skeleton_matches_reference_on_saturated_tree() {
    let mut queries = Vec::new();
    for (table, top) in [
        ("stars", 10),
        ("galaxies", 100),
        ("quasars", 1000),
        ("stars", 100),
        ("galaxies", 10),
        ("quasars", 100),
    ] {
        queries.push(
            parse_query(&format!(
                "select top {top} objid from {table} where u between 0 and 30"
            ))
            .unwrap(),
        );
    }
    let tree = RuleEngine::default().saturate_forward(&initial_difftree(&queries), 300);
    let ctx = Arc::new(QueryContext::compute(&tree, &queries));
    let plan = EvalPlan::new(Arc::clone(&ctx), Arc::new(LayoutSkeleton::compile(&tree)));
    let weights = CostWeights::default();
    let mut scratch = EvalScratch::default();
    for seed in 0..50 {
        let map = random_assignment(&tree, seed);
        let slots = plan.skeleton.slots_from_map(&map);
        for screen in screens() {
            let wt = build_widget_tree(&tree, &map, screen);
            let reference = evaluate_with_context(&wt, &ctx, &weights);
            let fast = evaluate_slots(&plan, &slots, screen, &weights, &mut scratch);
            assert_eq!(reference, fast, "seed {seed}, screen {screen:?}");
        }
    }
}

#[test]
fn per_sample_seeds_are_pairwise_distinct_and_uncorrelated() {
    // Distinctness across a realistic sample range for several base seeds...
    for base in [0u64, 1, 42, u64::MAX / 2, u64::MAX] {
        let seeds: Vec<u64> = (0..64).map(|i| per_sample_seed(base, i)).collect();
        let unique: std::collections::BTreeSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len(), "collision for base {base}");
        // ...and adjacent samples should differ in many bits (the old `seed + i` scheme
        // differed in ~1 low bit, which correlated the generators' draw streams).
        for pair in seeds.windows(2) {
            let differing = (pair[0] ^ pair[1]).count_ones();
            assert!(
                differing >= 16,
                "adjacent sample seeds share too many bits ({differing} differ)"
            );
        }
    }
    // Distinct base seeds do not collide on sample 0 either.
    assert_ne!(per_sample_seed(7, 0), per_sample_seed(8, 0));
}
