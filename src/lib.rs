//! # mctsui — Monte Carlo Tree Search for Generating Interactive Data Analysis Interfaces
//!
//! `mctsui` is a from-scratch Rust reproduction of Chen & Wu's *Monte Carlo Tree Search for
//! Generating Interactive Data Analysis Interfaces* (2020). Given a sequence of SQL analysis
//! queries (a query log or an ad-hoc session) and a target screen, it synthesises an
//! interactive interface — a hierarchical layout of dropdowns, sliders, radio buttons,
//! toggles, buttons and adders — whose widgets can express every query in the log with
//! minimal user effort.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`sql`] | `mctsui-sql` | SQL lexer/parser, generic AST, printer, structural diff |
//! | [`difftree`] | `mctsui-difftree` | The difftree representation and transformation rules |
//! | [`widgets`] | `mctsui-widgets` | Widget taxonomy, widget trees, layout solver |
//! | [`cost`] | `mctsui-cost` | The interface cost model `C(W, Q)` |
//! | [`mcts`] | `mctsui-mcts` | Generic UCT Monte Carlo Tree Search engine |
//! | [`baseline`] | `mctsui-baseline` | The bottom-up miner of Zhang et al. (SIGMOD 2017) |
//! | [`workload`] | `mctsui-workload` | The SDSS Listing 1 log and synthetic log generators |
//! | [`render`] | `mctsui-render` | ASCII and HTML renderers for generated interfaces |
//! | [`core`] | `mctsui-core` | The [`InterfaceGenerator`](core::InterfaceGenerator) API |
//! | [`serve`] | `mctsui-serve` | Multi-session anytime synthesis service (NDJSON over TCP) |
//!
//! ## Quickstart
//!
//! ```
//! use mctsui::core::{GeneratorConfig, InterfaceGenerator};
//! use mctsui::sql::parse_query;
//! use mctsui::widgets::Screen;
//!
//! let log = vec![
//!     parse_query("SELECT Sales FROM sales WHERE cty = 'USA'").unwrap(),
//!     parse_query("SELECT Costs FROM sales WHERE cty = 'EUR'").unwrap(),
//!     parse_query("SELECT Costs FROM sales").unwrap(),
//! ];
//! let interface =
//!     InterfaceGenerator::new(log, GeneratorConfig::quick(Screen::wide())).generate();
//! println!("{}", mctsui::render::render_ascii(&interface.widget_tree));
//! assert!(interface.cost.valid);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios (the SDSS dashboard of the paper's
//! Figure 6, a BI-style flight-delay dashboard, and a search-strategy ablation), and
//! `EXPERIMENTS.md` for the reproduction of every figure and claim in the paper.

pub use mctsui_baseline as baseline;
pub use mctsui_core as core;
pub use mctsui_cost as cost;
pub use mctsui_difftree as difftree;
pub use mctsui_mcts as mcts;
pub use mctsui_render as render;
pub use mctsui_serve as serve;
pub use mctsui_sql as sql;
pub use mctsui_widgets as widgets;
pub use mctsui_workload as workload;
