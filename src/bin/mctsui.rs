//! `mctsui` command-line interface: generate an interactive data-analysis interface from a
//! SQL query log — one-shot, or as a long-running multi-session service.
//!
//! ```text
//! mctsui [OPTIONS] [QUERY_FILE]          one-shot generation (default)
//! mctsui serve [OPTIONS]                 run the NDJSON-over-TCP synthesis server
//! mctsui client [OPTIONS] [QUERY_FILE]   drive scripted sessions against a server
//!
//! One-shot mode reads one SQL query per line (or `;`-separated statements) from
//! QUERY_FILE, or from stdin when no file is given. Lines starting with `--` or `#` are
//! ignored. Malformed queries are quarantined with a warning (the interface is generated
//! from the healthy remainder) rather than aborting the run.
//!
//! ONE-SHOT OPTIONS:
//!   --screen <wide|narrow|WxH>   target screen (default: wide = 1200x800)
//!   --seconds <n>                MCTS wall-clock budget in seconds (default: 10)
//!   --iterations <n>             MCTS iteration cap (default: 4000)
//!   --strategy <mcts|greedy|random|beam|initial>   search strategy (default: mcts)
//!   --threads <n>                MCTS worker threads (default: 1 = sequential)
//!   --parallel <tree|root>       worker topology for --threads > 1 (default: tree)
//!   --seed <n>                   RNG seed (default: 42)
//!   --format <ascii|html|json>   output format (default: ascii; json = full description)
//!   --out <path>                 write the rendered interface to a file instead of stdout
//!   --demo                       use the paper's SDSS Listing 1 log instead of reading input
//!   --scenario <name>            use a registered scenario's log and screen; builtin names
//!                                (fig6a-wide, ...) or generated corpus `corpus:<family>:<seed>`
//!   --help                       show this help
//!
//! SERVE OPTIONS:
//!   --addr <host:port>           bind address (default: 127.0.0.1:7878)
//!   --threads <n>                scheduler worker threads (default: cpu count)
//!   --slice <n>                  scheduler quantum in iterations (default: 64)
//!   --max-sessions <n>           admission cap on live sessions (default: 256)
//!   --batch <n>                  leaf-evaluation batch width (default: 8; 1 = sequential)
//!   --shards <n>                 session-table / cache shard count (default: 8)
//!   --screen <wide|narrow|WxH>   target screen of generated interfaces
//!   --snapshot-dir <path>        persist session snapshots here; resume after restart
//!   --snapshot-interval <ms>     snapshot cadence for quiescent sessions (default: 2000)
//!   --idle-timeout <ms>          reap sessions idle this long (default: 0 = never)
//!   --io-timeout <ms>            socket read/write timeout (default: 120000)
//!   --max-frame <bytes>          request line-length cap (default: 1048576)
//!   --fault-plan <spec>          inject deterministic faults, e.g.
//!                                "panic@3,drop@2,evalfail@5,evaldelay@7:50,expire@9"
//!   --strict                     reject logs containing malformed queries instead of
//!                                quarantining them and serving the healthy remainder
//!
//! CLIENT OPTIONS:
//!   --addr <host:port>           server address (default: 127.0.0.1:7878)
//!   --sessions <n>               concurrent scripted sessions (default: 1)
//!   --iterations <n>             iterations per request (default: 120)
//!   --refines <n>                refine rounds per session (default: 2)
//!   --deadline-millis <n>        per-request deadline (default: 10000)
//!   --seed <n>                   base session seed (default: 42)
//!   --demo                       use the SDSS Listing 1 log
//!   --scenario <name>            use a registered scenario's log (builtin or corpus name)
//!   --appends <n>                append n drift queries to each session's live log after
//!                                the refine rounds (requires --scenario corpus:<family>:<seed>;
//!                                the drift continues that corpus's generation stream)
//!   --shutdown                   send Shutdown after the sessions finish
//!   --tolerate-faults            reconnect/resume through faults instead of failing fast
//!   --persist                    leave sessions open (prints session=<id> for --resume)
//!   --resume <id>                reattach to a session by id instead of synthesizing
//! ```

use std::io::Read;
use std::process::ExitCode;

use mctsui::core::{GeneratorConfig, InterfaceDescription, InterfaceGenerator, SearchStrategy};
use mctsui::mcts::{Budget, ParallelMode};
use mctsui::render::{render_ascii, render_html};
use mctsui::serve::{
    run_concurrent_sessions, run_resume_session, Client, FaultPlan, Request, Response,
    ScriptConfig, ServeConfig, ServeEngine,
};
use mctsui::sql::{print_query, Ast};
use mctsui::widgets::Screen;
use mctsui::workload::{sdss_listing1, sdss_listing1_sql, Scenario};

/// Parsed command-line options.
struct Options {
    screen: Screen,
    /// True when `--screen` was given explicitly (a `--scenario` then keeps it).
    screen_explicit: bool,
    seconds: u64,
    iterations: usize,
    strategy: SearchStrategy,
    threads: usize,
    parallel: ParallelMode,
    seed: u64,
    format: Format,
    out: Option<String>,
    demo: bool,
    scenario: Option<String>,
    query_file: Option<String>,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Ascii,
    Html,
    Json,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            screen: Screen::wide(),
            screen_explicit: false,
            seconds: 10,
            iterations: 4_000,
            strategy: SearchStrategy::Mcts,
            threads: 1,
            parallel: ParallelMode::Tree,
            seed: 42,
            format: Format::Ascii,
            out: None,
            demo: false,
            scenario: None,
            query_file: None,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return serve_main(args[1..].to_vec()),
        Some("client") => return client_main(args[1..].to_vec()),
        _ => {}
    }
    one_shot_main(args)
}

/// `mctsui serve`: run the NDJSON synthesis server until a `Shutdown` request arrives.
fn serve_main(args: Vec<String>) -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServeConfig::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => match iter.next() {
                Some(value) => addr = value,
                None => return usage_error("--addr needs a value"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config = config.with_threads(n),
                None => return usage_error("--threads needs a number"),
            },
            "--slice" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config = config.with_slice_iterations(n),
                None => return usage_error("--slice needs a number"),
            },
            "--max-sessions" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config = config.with_max_sessions(n),
                None => return usage_error("--max-sessions needs a number"),
            },
            "--batch" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config = config.with_batch(n),
                None => return usage_error("--batch needs a number"),
            },
            "--shards" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config = config.with_shards(n),
                None => return usage_error("--shards needs a number"),
            },
            "--screen" => match iter.next().as_deref().map(parse_screen) {
                Some(Ok(screen)) => config.screen = screen,
                _ => return usage_error("--screen needs wide, narrow or WxH"),
            },
            "--snapshot-dir" => match iter.next() {
                Some(path) => config = config.with_snapshot_dir(path),
                None => return usage_error("--snapshot-dir needs a path"),
            },
            "--snapshot-interval" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => config = config.with_snapshot_interval_millis(n),
                None => return usage_error("--snapshot-interval needs a number (ms)"),
            },
            "--idle-timeout" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => config = config.with_idle_session_millis(n),
                None => return usage_error("--idle-timeout needs a number (ms)"),
            },
            "--io-timeout" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => config = config.with_io_timeout_millis(n),
                None => return usage_error("--io-timeout needs a number (ms)"),
            },
            "--max-frame" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config = config.with_max_frame_bytes(n),
                None => return usage_error("--max-frame needs a number (bytes)"),
            },
            "--fault-plan" => match iter.next().map(|spec| FaultPlan::parse(&spec)) {
                Some(Ok(plan)) => config = config.with_fault_plan(std::sync::Arc::new(plan)),
                Some(Err(e)) => return usage_error(&format!("bad --fault-plan: {e}")),
                None => return usage_error("--fault-plan needs a spec"),
            },
            "--strict" => config = config.with_strict(),
            other => return usage_error(&format!("unknown serve option `{other}`")),
        }
    }

    let engine = ServeEngine::start(config);
    eprintln!(
        "mctsui serve: {} scheduler threads, slice {} iterations, batch {}, {} shards, up to {} sessions",
        engine.config().threads,
        engine.config().slice_iterations,
        engine.config().batch,
        engine.config().shards,
        engine.config().max_sessions
    );
    if let Some(dir) = &engine.config().snapshot_dir {
        eprintln!(
            "session snapshots: {} (interval {} ms)",
            dir.display(),
            engine.config().snapshot_interval_millis
        );
    }
    if engine.config().fault.is_some() {
        eprintln!("fault injection active (deterministic chaos plan)");
    }
    if engine.config().strict {
        eprintln!("strict admission: logs with malformed queries are rejected, not quarantined");
    }
    let result = mctsui::serve::serve(engine, &addr, |bound| {
        eprintln!("listening on {bound} (NDJSON protocol; send \"Shutdown\" to stop)");
    });
    match result {
        Ok(()) => {
            eprintln!("server stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `mctsui client`: drive scripted synthesize → refine → interact → close sessions against
/// a running server, verifying the anytime contract (refines never lose ground). Exits
/// non-zero on any violation — this is the CI smoke driver.
fn client_main(args: Vec<String>) -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut sessions = 1usize;
    let mut script = ScriptConfig::default();
    let mut demo = false;
    let mut scenario: Option<String> = None;
    let mut shutdown = false;
    let mut appends = 0usize;
    let mut resume: Option<u64> = None;
    let mut query_file: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => match iter.next() {
                Some(value) => addr = value,
                None => return usage_error("--addr needs a value"),
            },
            "--sessions" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => sessions = n.max(1),
                None => return usage_error("--sessions needs a number"),
            },
            "--iterations" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => script.iterations = n,
                None => return usage_error("--iterations needs a number"),
            },
            "--refines" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => script.refines = n,
                None => return usage_error("--refines needs a number"),
            },
            "--deadline-millis" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => script.deadline_millis = n,
                None => return usage_error("--deadline-millis needs a number"),
            },
            "--seed" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => script.seed = n,
                None => return usage_error("--seed needs a number"),
            },
            "--demo" => demo = true,
            "--scenario" => match iter.next() {
                Some(name) => scenario = Some(name),
                None => return usage_error("--scenario needs a name"),
            },
            "--appends" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => appends = n,
                None => return usage_error("--appends needs a number"),
            },
            "--shutdown" => shutdown = true,
            "--tolerate-faults" => script.tolerate_faults = true,
            "--persist" => script.persist = true,
            "--resume" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(id) => resume = Some(id),
                None => return usage_error("--resume needs a session id"),
            },
            other if other.starts_with("--") => {
                return usage_error(&format!("unknown client option `{other}`"))
            }
            other => query_file = Some(other.to_string()),
        }
    }

    // Appends are drift mutations drawn from the session's corpus family: the generator
    // replays the corpus log's exact drift stream and continues it, so appended queries
    // are what that synthetic analyst would plausibly ask next.
    if appends > 0 {
        match scenario
            .as_deref()
            .and_then(mctsui::workload::CorpusSpec::parse_name)
        {
            Some(spec) => {
                let (_, drift) = spec.generate_with_appends(appends);
                script.appends = drift;
            }
            None => {
                return usage_error(
                    "--appends draws drift queries from a generated corpus; \
                     pass --scenario corpus:<family>:<seed>",
                )
            }
        }
    }

    // Resume mode reattaches by id — no query log involved.
    if let Some(session) = resume {
        eprintln!(
            "resuming session {session} against {addr} ({} iterations x {} refines)",
            script.iterations, script.refines
        );
        let report = match run_resume_session(&addr, session, &script) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "session {}: resumed at reward {:.3}, refined to {:.3} over {} request(s)",
            report.session,
            report.initial.reward,
            report.final_reward(),
            report.latencies_millis.len()
        );
        if script.persist {
            println!("session={}", report.session);
        }
        // The resumed session's live-log length (appends made before a restart survive
        // the snapshot round-trip); smoke tests grep this line.
        if let Some(len) = report.log_len {
            println!("log_len={len}");
        }
        if shutdown {
            return request_shutdown(&addr);
        }
        return ExitCode::SUCCESS;
    }

    let queries: Vec<String> = if let Some(name) = scenario {
        match Scenario::resolve(&name) {
            Ok(scenario) => {
                eprintln!("scenario {}: {}", scenario.name, scenario.description);
                scenario.queries.iter().map(print_query).collect()
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if demo {
        sdss_listing1_sql()
    } else if let Some(path) = query_file {
        match std::fs::read_to_string(&path) {
            Ok(text) => split_statements(&text).map(str::to_string).collect(),
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("error: client needs --demo or a QUERY_FILE");
        return ExitCode::FAILURE;
    };

    eprintln!(
        "driving {sessions} scripted session(s) against {addr} ({} queries, {} iterations x {} refines)",
        queries.len(),
        script.iterations,
        script.refines
    );
    let outcome = run_concurrent_sessions(&addr, &queries, &script, sessions);
    let reports = match outcome {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for report in &reports {
        eprintln!(
            "session {}: reward {:.3} -> {:.3} over {} request(s), interact: {}{}",
            report.session,
            report.initial.reward,
            report.final_reward(),
            report.latencies_millis.len(),
            report.interact_sql.as_deref().unwrap_or("(no widgets)"),
            if report.reconnects > 0 || report.restarts > 0 {
                format!(
                    " [{} reconnect(s), {} restart(s)]",
                    report.reconnects, report.restarts
                )
            } else {
                String::new()
            }
        );
        // Degraded admission: the server quarantined some queries instead of rejecting
        // the log. Surface each diagnostic instead of dying — the session still ran.
        for d in &report.diagnostics {
            eprintln!(
                "  quarantined query {} at byte {}: {}",
                d.index, d.offset, d.message
            );
        }
        if !report.appended.is_empty() {
            eprintln!(
                "  appended {} quer{} (live log now {} entries), post-append reward {:.3}",
                report.appended.len(),
                if report.appended.len() == 1 {
                    "y"
                } else {
                    "ies"
                },
                report.log_len.unwrap_or(0),
                report.appended.last().map(|b| b.reward).unwrap_or(0.0)
            );
        }
        if script.persist {
            println!("session={}", report.session);
        }
        if let Some(len) = report.log_len {
            println!("log_len={len}");
        }
    }

    if shutdown {
        return request_shutdown(&addr);
    }
    ExitCode::SUCCESS
}

/// Ask the server to drain and stop; reports failure as a non-zero exit.
fn request_shutdown(addr: &str) -> ExitCode {
    match Client::connect(addr).and_then(|mut c| c.call(&Request::Shutdown)) {
        Ok(Response::ShuttingDown) => {
            eprintln!("server shutdown requested");
            ExitCode::SUCCESS
        }
        Ok(other) => {
            eprintln!("error: unexpected shutdown response {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("run `mctsui --help` for usage");
    ExitCode::FAILURE
}

/// The original one-shot generation mode.
fn one_shot_main(args: Vec<String>) -> ExitCode {
    let options = match parse_args(args) {
        Ok(Some(options)) => options,
        Ok(None) => return ExitCode::SUCCESS, // --help
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `mctsui --help` for usage");
            return ExitCode::FAILURE;
        }
    };

    let mut options = options;
    let queries = match load_queries(&mut options) {
        Ok(queries) => queries,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    if queries.is_empty() {
        eprintln!("error: no queries to analyse");
        return ExitCode::FAILURE;
    }
    eprintln!("loaded {} queries", queries.len());
    for q in &queries {
        eprintln!("  {}", print_query(q));
    }

    // --threads upgrades a plain MCTS run to the parallel driver; the topology (shared
    // tree with virtual loss vs independent root-parallel trees) comes from --parallel.
    let strategy = match options.strategy {
        SearchStrategy::Mcts if options.threads > 1 => {
            SearchStrategy::MctsParallel(options.threads)
        }
        other => other,
    };
    let mut config = GeneratorConfig::paper_defaults(options.screen)
        .with_budget(Budget::Either {
            iterations: options.iterations,
            time_millis: options.seconds * 1000,
        })
        .with_seed(options.seed)
        .with_strategy(strategy);
    config.mcts.parallel = options.parallel;
    let interface = InterfaceGenerator::new(queries, config).generate();

    eprintln!(
        "generated interface: {} widgets, cost {:.2} ({} evaluations in {} ms)",
        interface.widget_tree.widget_count(),
        interface.cost.total,
        interface.stats.evaluations,
        interface.stats.elapsed_millis
    );

    let rendered = match options.format {
        Format::Ascii => render_ascii(&interface.widget_tree),
        Format::Html => render_html(&interface.widget_tree, "mctsui generated interface"),
        // The JSON output is the shared wire encoding: widget tree + choice domains + cost,
        // exactly what `mctsui serve` responses carry.
        Format::Json => match serde_json::to_string_pretty(&InterfaceDescription::of(&interface)) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("error: failed to serialise interface: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    match &options.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    ExitCode::SUCCESS
}

fn parse_args(args: Vec<String>) -> Result<Option<Options>, String> {
    let mut options = Options::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return Ok(None);
            }
            "--screen" => {
                let value = iter.next().ok_or("--screen needs a value")?;
                options.screen = parse_screen(&value)?;
                options.screen_explicit = true;
            }
            "--scenario" => {
                options.scenario = Some(iter.next().ok_or("--scenario needs a name")?);
            }
            "--seconds" => {
                options.seconds = parse_number(&iter.next().ok_or("--seconds needs a value")?)?;
            }
            "--iterations" => {
                options.iterations =
                    parse_number(&iter.next().ok_or("--iterations needs a value")?)? as usize;
            }
            "--seed" => {
                options.seed = parse_number(&iter.next().ok_or("--seed needs a value")?)?;
            }
            "--threads" => {
                options.threads =
                    (parse_number(&iter.next().ok_or("--threads needs a value")?)? as usize).max(1);
            }
            "--parallel" => {
                let value = iter.next().ok_or("--parallel needs a value")?;
                options.parallel = match value.as_str() {
                    "tree" => ParallelMode::Tree,
                    "root" => ParallelMode::Root,
                    other => return Err(format!("unknown parallel mode `{other}`")),
                };
            }
            "--strategy" => {
                let value = iter.next().ok_or("--strategy needs a value")?;
                options.strategy = match value.as_str() {
                    "mcts" => SearchStrategy::Mcts,
                    "greedy" => SearchStrategy::Greedy,
                    "random" => SearchStrategy::RandomWalk {
                        walks: 200,
                        depth: 60,
                    },
                    "beam" => SearchStrategy::Beam {
                        width: 4,
                        depth: 10,
                    },
                    "initial" => SearchStrategy::InitialOnly,
                    other => return Err(format!("unknown strategy `{other}`")),
                };
            }
            "--format" => {
                let value = iter.next().ok_or("--format needs a value")?;
                options.format = match value.as_str() {
                    "ascii" => Format::Ascii,
                    "html" => Format::Html,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--out" => options.out = Some(iter.next().ok_or("--out needs a value")?),
            "--demo" => options.demo = true,
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => options.query_file = Some(other.to_string()),
        }
    }
    Ok(Some(options))
}

fn parse_screen(value: &str) -> Result<Screen, String> {
    match value {
        "wide" => Ok(Screen::wide()),
        "narrow" => Ok(Screen::narrow()),
        other => {
            let parts: Vec<&str> = other.split('x').collect();
            if parts.len() == 2 {
                let w: u32 = parts[0]
                    .parse()
                    .map_err(|_| "bad screen width".to_string())?;
                let h: u32 = parts[1]
                    .parse()
                    .map_err(|_| "bad screen height".to_string())?;
                Ok(Screen::new(w, h))
            } else {
                Err(format!(
                    "unknown screen `{other}` (use wide, narrow or WxH)"
                ))
            }
        }
    }
}

fn parse_number(value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("`{value}` is not a number"))
}

fn load_queries(options: &mut Options) -> Result<Vec<Ast>, String> {
    if let Some(name) = &options.scenario {
        let scenario = Scenario::resolve(name)?;
        eprintln!("scenario {}: {}", scenario.name, scenario.description);
        // The scenario carries its own screen; an explicit --screen still wins.
        if !options.screen_explicit {
            options.screen = scenario.screen;
        }
        return Ok(scenario.queries);
    }
    if options.demo {
        return Ok(sdss_listing1());
    }
    let text = match &options.query_file {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        None => {
            let mut buffer = String::new();
            std::io::stdin()
                .read_to_string(&mut buffer)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buffer
        }
    };
    parse_query_log(&text)
}

/// Split a text into statements (one per line or `;`-separated) and triage each: healthy
/// queries feed the generator, malformed ones are quarantined with a warning. Only a log
/// with no healthy query at all is an error.
fn parse_query_log(text: &str) -> Result<Vec<Ast>, String> {
    let sources: Vec<&str> = split_statements(text).collect();
    let log = mctsui::core::TriagedLog::from_sources(&sources);
    for d in log.diagnostics() {
        eprintln!(
            "warning: quarantined query {} at byte {}: {}",
            d.index, d.offset, d.message
        );
    }
    let healthy = log.healthy();
    if healthy.is_empty() && !sources.is_empty() {
        return Err(format!(
            "all {} queries failed to parse; nothing to analyse",
            sources.len()
        ));
    }
    Ok(healthy)
}

/// Split a query-log text into statements: one per line or `;`-separated, comment lines
/// (`--`, `#`) and blanks dropped. Shared by one-shot mode and the client subcommand so
/// both accept exactly the same log files.
fn split_statements(text: &str) -> impl Iterator<Item = &str> {
    text.split([';', '\n'])
        .map(str::trim)
        .filter(|s| !s.is_empty() && !s.starts_with("--") && !s.starts_with('#'))
}

fn usage() -> String {
    "mctsui — generate an interactive data-analysis interface from a SQL query log\n\
     \n\
     USAGE: mctsui [OPTIONS] [QUERY_FILE]          one-shot generation\n\
     \u{20}       mctsui serve [OPTIONS]                 run the synthesis server (see module docs)\n\
     \u{20}       mctsui client [OPTIONS] [QUERY_FILE]   drive scripted sessions against a server\n\
     \n\
     Reads one SQL query per line (or `;`-separated) from QUERY_FILE or stdin.\n\
     Lines starting with `--` or `#` are ignored.\n\
     \n\
     OPTIONS:\n\
       --screen <wide|narrow|WxH>                      target screen (default wide)\n\
       --seconds <n>                                   search budget in seconds (default 10)\n\
       --iterations <n>                                iteration cap (default 4000)\n\
       --strategy <mcts|greedy|random|beam|initial>    search strategy (default mcts)\n\
       --threads <n>                                   MCTS worker threads (default 1)\n\
       --parallel <tree|root>                          worker topology (default tree)\n\
       --seed <n>                                      RNG seed (default 42)\n\
       --format <ascii|html|json>                      output format (default ascii)\n\
       --out <path>                                    write output to a file\n\
       --demo                                          use the paper's SDSS Listing 1 log\n\
       --scenario <name>                               use a registered scenario (fig6a-wide, ...,\n\
     \u{20}                                                or corpus:<family>:<seed>)\n\
       --help                                          show this help\n"
        .to_string()
}
