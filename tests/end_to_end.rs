//! Cross-crate integration tests: the full pipeline from SQL text to a rendered interface,
//! exercised on the paper's running example (Figure 1) and on the SDSS log (Listing 1).

use mctsui::core::{GeneratorConfig, InterfaceGenerator, InterfaceSession, SearchStrategy};
use mctsui::difftree::derive::express;
use mctsui::render::{render_ascii, render_html};
use mctsui::sql::parse_query;
use mctsui::widgets::Screen;
use mctsui::workload::{sdss_listing1, Scenario, ScenarioId};

fn quick_config(screen: Screen) -> GeneratorConfig {
    GeneratorConfig::quick(screen)
}

#[test]
fn figure1_end_to_end() {
    let scenario = Scenario::load(ScenarioId::Figure1);
    let interface =
        InterfaceGenerator::new(scenario.queries.clone(), quick_config(scenario.screen)).generate();

    assert!(interface.cost.valid);
    assert!(interface.widget_tree.fits_screen());
    assert!(interface.widget_tree.widget_count() >= 1);

    // Every input query is expressible by the generated interface.
    for q in &scenario.queries {
        assert!(express(interface.difftree.root(), q).is_some());
    }

    // The renderers produce non-trivial output for it.
    let ascii = render_ascii(&interface.widget_tree);
    assert!(ascii.lines().count() >= 4);
    let html = render_html(&interface.widget_tree, "figure 1");
    assert!(html.contains("</html>"));
}

#[test]
fn sdss_log_end_to_end_wide_screen() {
    let queries = sdss_listing1();
    let interface =
        InterfaceGenerator::new(queries.clone(), quick_config(Screen::wide())).generate();

    assert!(
        interface.cost.valid,
        "SDSS interface must be valid: {:?}",
        interface.cost
    );
    assert!(interface.widget_tree.fits_screen());
    // The searched interface factors the log: it must use more than one widget (unlike the
    // one-button-per-query interface) and fewer widgets than there are queries.
    let widget_count = interface.widget_tree.widget_count();
    assert!(
        widget_count >= 2,
        "expected a factored interface, got {widget_count} widgets"
    );
    assert!(
        widget_count <= queries.len(),
        "widget count should not exceed query count"
    );

    for q in &queries {
        assert!(express(interface.difftree.root(), q).is_some());
    }
}

#[test]
fn searched_interface_beats_the_low_reward_interface_on_sdss() {
    // Figure 6(a) vs Figure 6(d): the searched interface must cost less than the unfactored
    // one-button-per-query interface.
    let queries = sdss_listing1();
    let searched =
        InterfaceGenerator::new(queries.clone(), quick_config(Screen::wide())).generate();
    let low_reward = InterfaceGenerator::new(
        queries,
        quick_config(Screen::wide()).with_strategy(SearchStrategy::InitialOnly),
    )
    .generate();

    assert!(searched.cost.valid);
    assert!(
        searched.cost.total < low_reward.cost.total,
        "searched {} should beat low-reward {}",
        searched.cost.total,
        low_reward.cost.total
    );
}

#[test]
fn subset_interface_is_simpler_than_full_log_interface() {
    // Figure 6(c) vs 6(a): the 3-query subset needs fewer widgets than the full 10-query log.
    let full = Scenario::load(ScenarioId::Fig6aWide);
    let subset = Scenario::load(ScenarioId::Fig6cSubset);

    let full_iface =
        InterfaceGenerator::new(full.queries.clone(), quick_config(full.screen)).generate();
    let subset_iface =
        InterfaceGenerator::new(subset.queries.clone(), quick_config(subset.screen)).generate();

    assert!(full_iface.cost.valid && subset_iface.cost.valid);
    assert!(
        subset_iface.widget_tree.widget_count() <= full_iface.widget_tree.widget_count(),
        "subset interface ({}) should not need more widgets than the full one ({})",
        subset_iface.widget_tree.widget_count(),
        full_iface.widget_tree.widget_count()
    );
    assert!(subset_iface.cost.total <= full_iface.cost.total);
}

#[test]
fn narrow_screen_interface_fits_and_is_valid() {
    // Figure 6(b): the same log on a narrow screen still yields a valid, fitting interface.
    let scenario = Scenario::load(ScenarioId::Fig6bNarrow);
    let interface =
        InterfaceGenerator::new(scenario.queries.clone(), quick_config(scenario.screen)).generate();
    assert!(interface.cost.valid);
    assert!(interface.widget_tree.fits_screen());
    let (w, _) = interface.widget_tree.bounding_box();
    assert!(w <= scenario.screen.widget_area_width());
}

#[test]
fn generated_interfaces_support_interactive_sessions() {
    let queries = sdss_listing1();
    let interface =
        InterfaceGenerator::new(queries.clone(), quick_config(Screen::wide())).generate();
    let mut session = InterfaceSession::start(interface.difftree.clone(), &queries[0]).unwrap();

    // Replaying the whole log is possible and every step lands exactly on the logged query.
    for q in &queries {
        session.jump_to(q).unwrap();
        assert_eq!(&session.current_query(), q);
    }
}

#[test]
fn baseline_and_mcts_costs_are_comparable_units() {
    // The bottom-up baseline is costed with the same C(W, Q); on the SDSS log the MCTS
    // interface must be at least as good (it optimises that objective directly).
    let queries = sdss_listing1();
    let mcts = InterfaceGenerator::new(queries.clone(), quick_config(Screen::wide())).generate();
    let mined = mctsui::baseline::mine_interface(&queries, Screen::wide()).unwrap();
    let baseline_cost = mined.cost(&queries, &mctsui::cost::CostWeights::default());

    assert!(baseline_cost.total.is_finite());
    assert!(
        mcts.cost.total <= baseline_cost.total * 1.05,
        "MCTS ({}) should not be more than marginally worse than the 2017 baseline ({})",
        mcts.cost.total,
        baseline_cost.total
    );
}

#[test]
fn deterministic_generation_across_processes() {
    // Same seed, same result — this is what makes EXPERIMENTS.md reproducible.
    let queries = vec![
        parse_query("select top 10 objid from stars where u between 0 and 30").unwrap(),
        parse_query("select top 100 objid from galaxies where u between 0 and 30").unwrap(),
        parse_query("select count(*) from quasars where u between 0 and 30").unwrap(),
    ];
    let config = quick_config(Screen::wide()).with_seed(31337);
    let a = InterfaceGenerator::new(queries.clone(), config.clone()).generate();
    let b = InterfaceGenerator::new(queries, config).generate();
    assert_eq!(a.cost.total, b.cost.total);
    assert_eq!(a.difftree.fingerprint(), b.difftree.fingerprint());
    assert_eq!(render_ascii(&a.widget_tree), render_ascii(&b.widget_tree));
}

#[test]
fn widget_trees_serialise_and_deserialise() {
    let scenario = Scenario::load(ScenarioId::Figure1);
    let interface =
        InterfaceGenerator::new(scenario.queries, quick_config(scenario.screen)).generate();
    let json = serde_json::to_string(&interface.widget_tree).unwrap();
    let back: mctsui::widgets::WidgetTree = serde_json::from_str(&json).unwrap();
    assert_eq!(interface.widget_tree, back);

    let tree_json = serde_json::to_string(&interface.difftree).unwrap();
    let tree_back: mctsui::difftree::DiffTree = serde_json::from_str(&tree_json).unwrap();
    assert_eq!(interface.difftree, tree_back);
}
