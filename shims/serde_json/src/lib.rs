//! Offline stand-in for `serde_json`: renders the shimmed [`serde::Value`] as JSON text and
//! parses it back. Floats are printed with Rust's shortest round-trip formatting, so
//! serialize → deserialize is lossless for every finite `f64`.

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to an indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that parses back to the same f64.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid UTF-8 in number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole unescaped run in one slice: validating per code
                    // point would re-scan the remaining buffer each character, which is
                    // quadratic on multi-megabyte documents (session snapshots).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<i64> = vec![-3, 0, 7];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[-3,0,7]");
        let back: Vec<i64> = from_str(&json).unwrap();
        assert_eq!(v, back);

        let s = String::from("a \"quoted\"\nline");
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);

        let f = 0.1234567890123_f64;
        let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(u64::MAX)];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<Option<u64>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
