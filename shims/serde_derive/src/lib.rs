//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds in an environment without a crates.io mirror, so the real
//! `serde`/`serde_derive` crates cannot be vendored. This proc-macro crate implements
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the shimmed `serde` traits
//! (`Serialize::to_value` / `Deserialize::from_value` over a JSON-like `Value`).
//!
//! It deliberately supports exactly the shapes this workspace uses — non-generic structs
//! (named and tuple) and enums (unit, tuple and struct variants), with no `#[serde(...)]`
//! attributes — and panics with a clear message on anything else so that accidental drift
//! is caught at compile time rather than producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shimmed `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the shimmed `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------------------
// A tiny item parser (no syn available offline)
// ---------------------------------------------------------------------------------------

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: expected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Skip attributes (`#[...]`, including doc comments) and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' plus the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

/// Consume tokens of one type expression: everything up to a top-level `,` (angle-bracket
/// depth aware, so `Map<K, V>` stays one field).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // field name
        i += 1; // ':'
        skip_type(&tokens, &mut i);
        i += 1; // ','
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        i += 1; // ','
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------------------
// Code generation (string based; the output is small and fully under our control)
// ---------------------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                }
            };
            impl_serialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let pairs: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Object(::std::vec![{}]))]),",
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{ {} }}", arms.join(" ")))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?"))
                        .collect();
                    format!(
                        "let obj = ::serde::expect_object(v, \"{name}\")?; \
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => {
                    format!(
                        "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                    )
                }
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?"))
                        .collect();
                    format!(
                        "let arr = ::serde::expect_array(v, \"{name}\", {n})?; \
                         ::std::result::Result::Ok({name}({}))",
                        elems.join(", ")
                    )
                }
            };
            impl_deserialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ \
                             let arr = ::serde::expect_array(payload, \"{name}::{v}\", {n})?; \
                             ::std::result::Result::Ok({name}::{v}({})) }},",
                            elems.join(", ")
                        ))
                    }
                    Fields::Named(names) => {
                        let inits: Vec<String> = names
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ \
                             let obj = ::serde::expect_object(payload, \"{name}::{v}\")?; \
                             ::std::result::Result::Ok({name}::{v} {{ {} }}) }},",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            let body = format!(
                "match v {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ \
                 {} \
                 other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                 \"unknown variant `{{other}}` of {name}\"))), }}, \
                 _ => {{ \
                 let (tag, payload) = ::serde::expect_tagged(v, \"{name}\")?; \
                 match tag {{ \
                 {} \
                 other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                 \"unknown variant `{{other}}` of {name}\"))), }} }} }}",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
         {body} }} }}"
    )
}
