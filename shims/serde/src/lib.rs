//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in an environment with no crates.io mirror, so the real `serde`
//! cannot be used. The shim keeps the *call sites* of the workspace source-compatible —
//! `use serde::{Serialize, Deserialize}` plus `#[derive(Serialize, Deserialize)]` — while
//! implementing a much simpler data model: every serializable type converts to and from a
//! JSON-like [`Value`]. The sibling `serde_json` shim renders that `Value` as JSON text.
//!
//! Supported field types are exactly what the workspace needs: primitives, `String`,
//! `Vec`, `Option`, `Box`, 2- and 3-tuples, `BTreeMap` and `HashMap` (any hasher).
//! Maps serialize as arrays of `[key, value]` pairs so non-string keys round-trip.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// A JSON-like value: the intermediate representation of every (de)serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, kept as ordered key/value pairs (insertion order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// The error type shared by serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`]. The shimmed counterpart of `serde::Serialize`.
pub trait Serialize {
    /// Convert `self` into the intermediate [`Value`] representation.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`]. The shimmed counterpart of `serde::Deserialize`.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from the intermediate [`Value`] representation.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------------------
// Helpers used by the derive macro
// ---------------------------------------------------------------------------------------

/// Expect an object, with a type name for error messages.
pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    v.as_object()
        .ok_or_else(|| Error::custom(format!("expected object for {ty}")))
}

/// Expect an array of exactly `len` elements.
pub fn expect_array<'v>(v: &'v Value, ty: &str, len: usize) -> Result<&'v [Value], Error> {
    let arr = v
        .as_array()
        .ok_or_else(|| Error::custom(format!("expected array for {ty}")))?;
    if arr.len() != len {
        return Err(Error::custom(format!(
            "expected {len} elements for {ty}, got {}",
            arr.len()
        )));
    }
    Ok(arr)
}

/// Expect a single-entry object `{tag: payload}` (the encoding of payload-carrying enum
/// variants).
pub fn expect_tagged<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), Error> {
    let obj = expect_object(v, ty)?;
    match obj {
        [(tag, payload)] => Ok((tag.as_str(), payload)),
        _ => Err(Error::custom(format!(
            "expected single-variant object for {ty}"
        ))),
    }
}

/// Look up and deserialize one field of an object.
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
    let value = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))?;
    T::from_value(value)
}

// ---------------------------------------------------------------------------------------
// Implementations for primitives and std containers
// ---------------------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("unsigned value out of range"))?,
                    _ => return Err(Error::custom("expected integer")),
                };
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom("negative value for unsigned field"))?,
                    _ => return Err(Error::custom("expected integer")),
                };
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            // Non-finite floats are emitted as null (JSON has no representation for them).
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = expect_array(v, "tuple", 2)?;
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = expect_array(v, "tuple", 3)?;
        Ok((
            A::from_value(&arr[0])?,
            B::from_value(&arr[1])?,
            C::from_value(&arr[2])?,
        ))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array of pairs"))?;
        let mut out = BTreeMap::new();
        for pair in arr {
            let pair = expect_array(pair, "map entry", 2)?;
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array of pairs"))?;
        let mut out = HashMap::with_capacity_and_hasher(arr.len(), S::default());
        for pair in arr {
            let pair = expect_array(pair, "map entry", 2)?;
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}
