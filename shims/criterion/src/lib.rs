//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!` — as a straightforward calibrated timing loop.
//! Results print one line per benchmark (median ns/iter); when the environment variable
//! `CRITERION_JSON` names a file, one JSON object per benchmark is appended to it, which is
//! how the repository's `BENCH_*.json` baselines are recorded.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Entry point handed to the `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }

    /// Run a standalone benchmark (same as a group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        self
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = self.label(id);
        run_benchmark(&label, self, |b| f(b));
        self
    }

    /// Benchmark a closure against a fixed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = self.label(&id.0);
        run_benchmark(&label, self, |b| f(b, input));
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}

    fn label(&self, id: &str) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        }
    }
}

/// The measurement driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` invocations of the routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// An identity function that prevents the optimizer from deleting a computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, group: &BenchmarkGroup, mut f: F) {
    // Warm up and calibrate: find an iteration count whose run time is measurable.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_up_start = Instant::now();
    f(&mut bencher);
    while bencher.elapsed < Duration::from_millis(5)
        && warm_up_start.elapsed() < group.warm_up_time
        && bencher.iters < 1 << 40
    {
        bencher.iters *= 4;
        f(&mut bencher);
    }

    // Collect samples within the measurement budget.
    let mut samples_ns: Vec<f64> = Vec::with_capacity(group.sample_size);
    let measurement_start = Instant::now();
    for _ in 0..group.sample_size {
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        if measurement_start.elapsed() > group.measurement_time {
            break;
        }
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns.first().copied().unwrap_or(median);
    let max = samples_ns.last().copied().unwrap_or(median);

    println!("{label:<50} time: [{min:>12.1} ns {median:>12.1} ns {max:>12.1} ns]");

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"benchmark\":\"{label}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\
                 \"max_ns\":{max:.1},\"samples\":{},\"iters_per_sample\":{}}}",
                samples_ns.len(),
                bencher.iters
            );
        }
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
