//! Offline stand-in for the `rustc-hash` crate: the classic Fx multiplicative hasher used by
//! rustc, plus the `FxHashMap`/`FxHashSet` aliases. Behaviourally equivalent to the real
//! crate for hashing purposes (fast, deterministic, not DoS-resistant).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiplicative hasher.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut map: FxHashMap<String, usize> = FxHashMap::default();
        map.insert("a".into(), 1);
        map.insert("b".into(), 2);
        assert_eq!(map.get("a"), Some(&1));

        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(42));
        assert!(!set.insert(42));
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world");
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello worle");
        assert_ne!(a.finish(), c.finish());
    }
}
