//! Offline stand-in for the `proptest` crate.
//!
//! Supports the API subset this workspace's property tests use: the [`Strategy`] trait with
//! `prop_map`, [`Just`], range strategies, tuple strategies, `prop_oneof!`,
//! `proptest::collection::vec`, `proptest::option::of`, `any::<bool>()` and the `proptest!`
//! macro with `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate: no shrinking (a failing case reports its inputs via the
//! panic message instead), and the RNG stream is deterministic per test name, so failures
//! reproduce exactly on re-run.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property check (returned by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The RNG handed to strategies. Deterministic per seed.
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator whose stream is determined by the given name (typically the test name).
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of random values (the shimmed counterpart of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice among several strategies of the same value type (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.rng().gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy (counterpart of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy over all values of the type.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy over every value of `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy type produced by [`Arbitrary`] for primitives.
pub struct ArbitraryPrimitive<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for ArbitraryPrimitive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl Arbitrary for bool {
    type Strategy = ArbitraryPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        ArbitraryPrimitive(|rng| rng.rng().gen::<bool>())
    }
}

impl Arbitrary for u64 {
    type Strategy = ArbitraryPrimitive<u64>;
    fn arbitrary() -> Self::Strategy {
        ArbitraryPrimitive(|rng| rng.rng().gen::<u64>())
    }
}

/// Collection strategies (counterpart of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy over vectors whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.rng().gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (counterpart of `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy over `Option<T>`: `None` a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.rng().gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The `prop` path alias used by some proptest idioms (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert a condition inside a property test, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property test, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// running `cases` random inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    // No shrinking: the RNG is deterministic per test name, so the failing
                    // case reproduces exactly on re-run.
                    panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                }
            }
        }
    )*};
}
