//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API subset this workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool` — on top of a SplitMix64-fed
//! xoshiro256**-style generator. The stream differs from the real `rand::StdRng`, which is
//! fine: the workspace only relies on determinism per seed, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The random-number-generator interface (the shimmed counterpart of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw one uniformly distributed value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw one value uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }
}

/// Construction of a generator from seed material (counterpart of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator (xoshiro256** seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full 256-bit state, per the
            // xoshiro authors' recommendation.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl StdRng {
        /// The full 256-bit generator state, for snapshotting a stream mid-run.
        pub fn state(&self) -> [u64; 4] {
            self.state
        }

        /// Rebuild a generator from a previously captured [`StdRng::state`]. The restored
        /// generator continues the original stream exactly where the capture paused it.
        pub fn from_state(state: [u64; 4]) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(0usize..=4);
            assert!(x <= 4);
        }
    }

    #[test]
    fn state_snapshot_resumes_the_stream_exactly() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            let _: u64 = rng.gen();
        }
        let snapshot = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.gen()).collect();
        let mut restored = StdRng::from_state(snapshot);
        let replay: Vec<u64> = (0..32).map(|_| restored.gen()).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (1_800..3_200).contains(&hits),
            "got {hits} hits out of 10000"
        );
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
