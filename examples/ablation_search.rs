//! Search-strategy ablation and search-space statistics on the SDSS log.
//!
//! ```text
//! cargo run --release --example ablation_search -- [stats|compare] [seconds]
//! ```
//!
//! * `stats`   — measure the fanout / path-length claims of the paper (experiment S1)
//! * `compare` — compare MCTS against greedy, random-walk, beam search and the 2017
//!   bottom-up baseline on the Listing 1 log (experiments S3/A1)

use mctsui::baseline::mine_interface;
use mctsui::core::{search_space_stats, GeneratorConfig, InterfaceGenerator, SearchStrategy};
use mctsui::cost::CostWeights;
use mctsui::difftree::RuleEngine;
use mctsui::mcts::Budget;
use mctsui::widgets::Screen;
use mctsui::workload::sdss_listing1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("compare");
    let seconds: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);

    match mode {
        "stats" => stats(),
        _ => compare(seconds),
    }
}

fn stats() {
    let queries = sdss_listing1();
    let engine = RuleEngine::default();
    println!("Search-space statistics for the Listing 1 log (10 queries)");
    println!("(the paper reports fanout up to ~50 and search paths up to ~100 steps)\n");
    let stats = search_space_stats(&queries, &engine, 20, 150, 42);
    println!(
        "  initial difftree size : {} nodes",
        stats.initial_tree_size
    );
    println!("  initial fanout        : {}", stats.initial_fanout);
    println!("  max fanout (sampled)  : {}", stats.max_fanout);
    println!("  mean fanout (sampled) : {:.1}", stats.mean_fanout);
    println!("  max walk length       : {}", stats.max_walk_length);
    println!("  mean walk length      : {:.1}", stats.mean_walk_length);
}

fn compare(seconds: u64) {
    let queries = sdss_listing1();
    let screen = Screen::wide();
    let weights = CostWeights::default();
    let budget = Budget::Either {
        iterations: 2_000,
        time_millis: seconds * 1000,
    };

    println!(
        "Strategy comparison on the Listing 1 log ({} queries, {}s budget per strategy)\n",
        queries.len(),
        seconds
    );
    println!(
        "{:<22} {:>10} {:>12} {:>10}",
        "strategy", "cost", "evaluations", "widgets"
    );
    println!("{}", "-".repeat(58));

    let strategies: Vec<(&str, SearchStrategy)> = vec![
        ("mcts", SearchStrategy::Mcts),
        ("mcts-parallel(4)", SearchStrategy::MctsParallel(4)),
        ("greedy", SearchStrategy::Greedy),
        (
            "random-walk",
            SearchStrategy::RandomWalk {
                walks: 150,
                depth: 40,
            },
        ),
        ("beam(4, 8)", SearchStrategy::Beam { width: 4, depth: 8 }),
        ("initial-only (6d)", SearchStrategy::InitialOnly),
    ];

    for (name, strategy) in strategies {
        let config = GeneratorConfig::paper_defaults(screen)
            .with_budget(budget)
            .with_strategy(strategy);
        let interface = InterfaceGenerator::new(queries.clone(), config).generate();
        println!(
            "{:<22} {:>10.2} {:>12} {:>10}",
            name,
            interface.cost.total,
            interface.stats.evaluations,
            interface.widget_tree.widget_count()
        );
    }

    if let Some(mined) = mine_interface(&queries, screen) {
        let cost = mined.cost(&queries, &weights);
        println!(
            "{:<22} {:>10.2} {:>12} {:>10}",
            "bottom-up 2017",
            cost.total,
            "-",
            mined.widget_count()
        );
    }
}
