//! Serving walkthrough: start the synthesis server in-process on an ephemeral loopback
//! port, then drive one full session over the NDJSON wire protocol — synthesize the SDSS
//! Listing 1 log, refine the session twice (the warm search tree keeps improving), drive a
//! widget of the generated interface, read engine stats, and shut the server down.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_session
//! ```

use std::net::TcpListener;
use std::sync::Arc;

use mctsui::serve::{serve_on, Client, Request, Response, ServeConfig, ServeEngine, WidgetAction};
use mctsui::workload::sdss_listing1_sql;

fn main() {
    // 1. Start the engine (2 scheduler workers) and the TCP front end on port 0.
    let engine = ServeEngine::start(ServeConfig::default().with_threads(2));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server_engine = Arc::clone(&engine);
    let server = std::thread::spawn(move || serve_on(server_engine, listener));
    println!("server listening on {addr}");

    let mut client = Client::connect(&addr).expect("connect");

    // 2. Synthesize: open a session for the paper's Listing 1 log.
    let response = client
        .call(&Request::Synthesize {
            queries: sdss_listing1_sql(),
            iterations: 300,
            deadline_millis: 10_000,
            seed: 42,
        })
        .expect("synthesize");
    let (session, mut reward, interface) = match response {
        Response::Synthesized {
            session,
            best,
            interface,
            ..
        } => {
            println!(
                "\nsession {session}: {} widgets, cost {:.2} after {} iterations",
                interface.widget_count, best.cost_total, best.iterations
            );
            (session, best.reward, interface)
        }
        other => panic!("unexpected response: {other:?}"),
    };

    // 3. Refine: the session's search tree is warm — each request continues where the
    // previous one paused, so the best reward never decreases.
    let mut interface = interface;
    for round in 1..=2 {
        let response = client
            .call(&Request::Refine {
                session,
                iterations: 300,
                deadline_millis: 10_000,
            })
            .expect("refine");
        match response {
            Response::Refined {
                best,
                improved,
                interface: refined,
                ..
            } => {
                println!(
                    "refine {round}: reward {:.3} -> {:.3} ({}), {} tree nodes",
                    reward,
                    best.reward,
                    if improved { "improved" } else { "held" },
                    best.tree_nodes
                );
                assert!(best.reward >= reward, "anytime contract violated");
                reward = best.reward;
                interface = refined;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    // 4. Interact: drive the first widget of the final interface and show the re-derived
    // SQL the visualization panel would execute.
    if let Some(choice) = interface.choices.first() {
        println!(
            "\ninteracting with the {} widget at {:?} ({} options)",
            choice.widget, choice.path.0, choice.cardinality
        );
        let action = WidgetAction::Select {
            path: choice.path.0.clone(),
            pick: choice.cardinality.saturating_sub(1),
        };
        match client.call(&Request::Interact { session, action }) {
            Ok(Response::Interacted { sql, .. }) => println!("re-derived SQL: {sql}"),
            Ok(other) => panic!("unexpected response: {other:?}"),
            // Opt/Multi widgets want a different action; keep the example resilient.
            Err(e) => println!("interaction skipped: {e}"),
        }
    }

    // 5. Stats, then shutdown.
    if let Response::Stats(stats) = client.call(&Request::Stats).expect("stats") {
        println!(
            "\nengine stats: {} session(s), {} iterations in {} slices, \
             plan cache {:.0}% hits, action index {:.0}% hits",
            stats.sessions,
            stats.total_iterations,
            stats.total_slices,
            stats.context_cache.plans.hit_ratio() * 100.0,
            stats.action_index.hit_ratio() * 100.0,
        );
    }
    client.call(&Request::Close { session }).expect("close");
    client.call(&Request::Shutdown).expect("shutdown");
    server.join().expect("server thread").expect("server io");
    println!("\nserver stopped cleanly");
}
