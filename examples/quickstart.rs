//! Quickstart: generate an interface for the three-query example of the paper's Figure 1 and
//! interact with it programmatically.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mctsui::core::{GeneratorConfig, InterfaceGenerator, InterfaceSession};
use mctsui::difftree::DiffKind;
use mctsui::render::render_ascii;
use mctsui::sql::{parse_query, print_query};
use mctsui::widgets::Screen;

fn main() {
    // The three queries of Figure 1.
    let log = vec![
        parse_query("SELECT Sales FROM sales WHERE cty = 'USA'").unwrap(),
        parse_query("SELECT Costs FROM sales WHERE cty = 'EUR'").unwrap(),
        parse_query("SELECT Costs FROM sales").unwrap(),
    ];

    println!("== Input query log ==");
    for (i, q) in log.iter().enumerate() {
        println!("  q{}: {}", i + 1, print_query(q));
    }

    // Generate an interface for a wide screen with a CI-friendly search budget.
    let config = GeneratorConfig::quick(Screen::wide());
    let interface = InterfaceGenerator::new(log.clone(), config).generate();

    println!("\n== Generated interface ==");
    println!("{}", render_ascii(&interface.widget_tree));
    println!(
        "\ncost: total={:.2} (appropriateness={:.2}, navigation={:.2}, interaction={:.2})",
        interface.cost.total,
        interface.cost.appropriateness,
        interface.cost.navigation,
        interface.cost.interaction
    );
    println!(
        "search: {} state evaluations in {} ms, initial fanout {}",
        interface.stats.evaluations, interface.stats.elapsed_millis, interface.stats.initial_fanout
    );

    // Drive the interface like a user would: start at q1, flip every widget once.
    println!("\n== Interactive session ==");
    let mut session = InterfaceSession::start(interface.difftree.clone(), &log[0])
        .expect("interface expresses q1");
    println!("start          : {}", session.current_sql());

    for path in interface.difftree.choice_paths() {
        let node = interface.difftree.node_at(&path).unwrap();
        match node.kind() {
            DiffKind::Any => {
                let alternatives = node.children().len();
                let pick = 1 % alternatives;
                if session.select_option(&path, pick).is_ok() {
                    println!("select {:<8}: {}", format!("{path}"), session.current_sql());
                }
            }
            DiffKind::Opt => {
                if session.set_included(&path, false).is_ok() {
                    println!("toggle {:<8}: {}", format!("{path}"), session.current_sql());
                }
            }
            DiffKind::Multi => {
                if session.set_repetitions(&path, 2).is_ok() {
                    println!("repeat {:<8}: {}", format!("{path}"), session.current_sql());
                }
            }
            DiffKind::All => {}
        }
    }

    // Every input query can be replayed on the generated interface.
    println!("\n== Replaying the log ==");
    for q in &log {
        session.jump_to(q).expect("expressible");
        println!("  {}", session.current_sql());
    }
}
