//! Reproduce the SDSS interfaces of the paper's Figure 6.
//!
//! ```text
//! cargo run --release --example sdss_dashboard -- [wide|narrow|subset|lowreward|all] [seconds]
//! ```
//!
//! * `wide`      — Figure 6(a): all ten Listing 1 queries, wide screen
//! * `narrow`    — Figure 6(b): all ten queries, narrow screen
//! * `subset`    — Figure 6(c): queries 6-8 only
//! * `lowreward` — Figure 6(d): the unfactored (one button per query) interface
//! * `all`       — run all four
//!
//! The optional second argument is the MCTS wall-clock budget in seconds (default 5; the
//! paper uses ~60).

use std::fs;

use mctsui::core::{GeneratedInterface, GeneratorConfig, InterfaceGenerator, SearchStrategy};
use mctsui::mcts::Budget;
use mctsui::render::{render_ascii, render_html};
use mctsui::widgets::WidgetType;
use mctsui::workload::{Scenario, ScenarioId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let seconds: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);

    let scenarios: Vec<ScenarioId> = match which {
        "wide" => vec![ScenarioId::Fig6aWide],
        "narrow" => vec![ScenarioId::Fig6bNarrow],
        "subset" => vec![ScenarioId::Fig6cSubset],
        "lowreward" => vec![ScenarioId::Fig6dLowReward],
        _ => vec![
            ScenarioId::Fig6aWide,
            ScenarioId::Fig6bNarrow,
            ScenarioId::Fig6cSubset,
            ScenarioId::Fig6dLowReward,
        ],
    };

    let out_dir = std::path::Path::new("target/interfaces");
    fs::create_dir_all(out_dir).ok();

    for id in scenarios {
        let scenario = Scenario::load(id);
        println!("\n================================================================");
        println!("{} — {}", scenario.name, scenario.description);
        println!(
            "{} queries, screen {}x{} px",
            scenario.query_count(),
            scenario.screen.width,
            scenario.screen.height
        );
        println!("================================================================");

        let interface = generate(&scenario, seconds);
        println!("{}", render_ascii(&interface.widget_tree));
        println!(
            "\ncost total={:.2}  M={:.2}  nav={:.2}  inter={:.2}  widgets={}",
            interface.cost.total,
            interface.cost.appropriateness,
            interface.cost.navigation,
            interface.cost.interaction,
            interface.widget_tree.widget_count()
        );
        summarise_widgets(&interface);

        let html = render_html(
            &interface.widget_tree,
            &format!("{} — {}", scenario.name, scenario.description),
        );
        let path = out_dir.join(format!("{}.html", scenario.name));
        if fs::write(&path, html).is_ok() {
            println!("wrote {}", path.display());
        }
    }
}

fn generate(scenario: &Scenario, seconds: u64) -> GeneratedInterface {
    let mut config = GeneratorConfig::paper_defaults(scenario.screen).with_budget(Budget::Either {
        iterations: 4_000,
        time_millis: seconds * 1000,
    });
    if scenario.name == ScenarioId::Fig6dLowReward.name() {
        // Figure 6(d) is the *low reward* interface: no search, the initial difftree.
        config = config.with_strategy(SearchStrategy::InitialOnly);
    }
    InterfaceGenerator::new(scenario.queries.clone(), config).generate()
}

fn summarise_widgets(interface: &GeneratedInterface) {
    let mut counts: std::collections::BTreeMap<WidgetType, usize> =
        std::collections::BTreeMap::new();
    for (_, w) in interface.widget_tree.widgets() {
        *counts.entry(w.widget_type).or_insert(0) += 1;
    }
    let summary: Vec<String> = counts.iter().map(|(t, n)| format!("{n}x {t}")).collect();
    println!("widget mix: {}", summary.join(", "));
}
