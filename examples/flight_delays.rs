//! A business-intelligence-style scenario: generate a dashboard for a flight-delay analysis
//! session — the kind of repetitive ad-hoc querying the paper's introduction motivates
//! (a Jupyter-notebook session that keeps slicing the same measures by different filters).
//!
//! ```text
//! cargo run --release --example flight_delays -- [n_queries] [seconds]
//! ```

use mctsui::baseline::mine_interface;
use mctsui::core::{GeneratorConfig, InterfaceGenerator, InterfaceSession};
use mctsui::cost::CostWeights;
use mctsui::mcts::Budget;
use mctsui::render::render_ascii;
use mctsui::sql::print_query;
use mctsui::widgets::Screen;
use mctsui::workload::LogSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_queries: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(12);
    let seconds: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);

    let log = LogSpec::flights_style(n_queries, 2024).generate();
    println!(
        "== Flight-delay analysis session ({} queries) ==",
        log.len()
    );
    for (i, sql) in log.sql.iter().enumerate() {
        println!("  q{:<2}: {}", i + 1, sql);
    }

    let screen = Screen::wide();
    let config = GeneratorConfig::paper_defaults(screen).with_budget(Budget::Either {
        iterations: 3_000,
        time_millis: seconds * 1000,
    });
    let interface = InterfaceGenerator::new(log.queries.clone(), config).generate();

    println!("\n== Generated dashboard ==");
    println!("{}", render_ascii(&interface.widget_tree));
    println!(
        "cost total={:.2} with {} widgets ({} evaluations in {} ms)",
        interface.cost.total,
        interface.widget_tree.widget_count(),
        interface.stats.evaluations,
        interface.stats.elapsed_millis
    );

    // Compare against the bottom-up baseline of Zhang et al. (2017).
    if let Some(mined) = mine_interface(&log.queries, screen) {
        let baseline_cost = mined.cost(&log.queries, &CostWeights::default());
        println!(
            "\nbaseline (bottom-up 2017): {} widgets, cost total={:.2} (valid: {})",
            mined.widget_count(),
            baseline_cost.total,
            baseline_cost.valid
        );
        println!(
            "MCTS improvement over baseline: {:.1}%",
            100.0 * (baseline_cost.total - interface.cost.total) / baseline_cost.total.max(1e-9)
        );
    }

    // Replay the analysis session through the generated interface.
    println!("\n== Replaying the session through the dashboard ==");
    let mut session = InterfaceSession::start(interface.difftree.clone(), &log.queries[0])
        .expect("interface expresses the first query");
    for q in log.queries.iter().take(5) {
        session.jump_to(q).expect("expressible");
        println!("  {}", print_query(&session.current_query()));
    }
    println!(
        "  ... every one of the {} queries is expressible.",
        log.len()
    );
}
